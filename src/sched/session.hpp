#pragma once
// Unified scheduler sessions (DESIGN.md section 7).  The paper's two
// parallel workloads -- a fixed list of start solutions (section II) and the
// dynamically expanding Pieri tree (section III-D) -- and every dispatch
// protocol built for them compose here from three orthogonal axes:
//
//   JobSource  -- where jobs come from: a fixed pool (VectorJobSource) or a
//                 master-side expansion that creates jobs from results
//                 (PieriTreeJobSource in sched/pieri_scheduler.hpp);
//   Policy     -- how jobs reach slaves: per-job FCFS dispatch, static
//                 pre-assignment, or guided batches with master-brokered
//                 work stealing -- one shared master loop, one set of
//                 message tags (job_pool.hpp), one kill-switch and
//                 death-requeue implementation;
//   ResultSink -- where finished jobs go: an in-memory report
//                 (InMemoryReportSink), a streaming on-disk store
//                 (JsonlStoreSink in sched/result_store.hpp), a latency
//                 decorator (LatencySink), or several at once (tee(...)).
//
// The option/stat/policy types a session is composed from live in the
// front-door header sched/api.hpp.  The legacy entry points (run_static,
// run_dynamic, run_batch, run_parallel_pieri) are deprecated wrappers over
// a Session; new code should compose a Session directly.  Scheduling never
// changes the numerics: for a given source, every policy produces
// bit-identical result sets.
//
// Robustness (DESIGN.md section 11): with SessionOptions::supervisor
// enabled, the master tracks slave liveness via heartbeats (kTagHeartbeat)
// and per-job EWMA service times, declares silent slaves suspect -> dead
// and re-queues their work, speculatively re-dispatches straggling jobs
// (first result wins), and quarantines jobs that repeatedly coincide with
// worker death.  Faults themselves are injected deterministically through
// SessionOptions::fault_plan (mp/fault.hpp).

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "sched/api.hpp"
#include "sched/job_pool.hpp"
#include "util/timer.hpp"

namespace pph::sched {

/// Master-side job identity: how the session's ownership map, the result
/// store, and death re-queuing name a job.  For a VectorJobSource the id IS
/// the path index; tree sources hand out sequential ids.
using JobId = std::uint64_t;

// ---------------------------------------------------------------------------
// ResultSink: where finished jobs go (rank 0 only, master arrival order).
// ---------------------------------------------------------------------------

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// One finished job.  Called on the master in arrival order (NOT sorted
  /// by index); sinks that need order sort at assembly time.
  virtual void accept(const TrackedPath& tp) = 0;
  /// Called exactly once when the session ends (flush point for stores).
  virtual void finish() {}
};

/// Collects every record in memory and assembles the legacy report.
class InMemoryReportSink final : public ResultSink {
 public:
  void accept(const TrackedPath& tp) override { paths_.push_back(tp); }
  std::size_t count() const { return paths_.size(); }
  /// The legacy ParallelRunReport: paths sorted + tallied, stats folded in.
  /// One-shot: moves the collected records out of the sink (a second copy
  /// of a million-path result set has no business existing on the master).
  ParallelRunReport report(const SessionStats& stats);

 private:
  std::vector<TrackedPath> paths_;
};

/// Drops every record: for sources that accumulate what they need inside
/// consume() (the Pieri tree keeps only live instances -- the paper's
/// section III-C memory argument), buffering per-edge records on the
/// master would defeat the point.
class DiscardSink final : public ResultSink {
 public:
  void accept(const TrackedPath&) override {}
};

/// Fan a session's results into any number of sinks (e.g. report +
/// on-disk store + latency decorator).  Compose through the variadic
/// tee(...) factory below; the referenced sinks must outlive the fan-out.
class FanoutSink final : public ResultSink {
 public:
  explicit FanoutSink(std::vector<ResultSink*> sinks) : sinks_(std::move(sinks)) {}
  void accept(const TrackedPath& tp) override {
    for (ResultSink* s : sinks_) s->accept(tp);
  }
  void finish() override {
    for (ResultSink* s : sinks_) s->finish();
  }

 private:
  std::vector<ResultSink*> sinks_;
};

/// tee(report, store, ...): one sink that forwards to all of its arguments
/// in order.  Replaces the old two-arm TeeSink constructor.
template <typename... Sinks>
FanoutSink tee(Sinks&... sinks) {
  return FanoutSink({static_cast<ResultSink*>(&sinks)...});
}

/// Decorator adding admit->report latency percentiles to ANY sink: the
/// serve loop (or any caller) stamps admission with admit(id); accept()
/// takes the sample and forwards to the inner sink unchanged.  A job that
/// was never stamped is measured from the decorator's construction -- in a
/// batch (non-streamed) session every job "arrives" when the run starts,
/// so the samples degenerate to time-to-completion.
class LatencySink final : public ResultSink {
 public:
  explicit LatencySink(ResultSink& inner) : inner_(inner) {}

  void admit(JobId id) { admit_seconds_[id] = clock_.seconds(); }

  void accept(const TrackedPath& tp) override {
    const auto it = admit_seconds_.find(tp.index);
    const double admitted = it == admit_seconds_.end() ? 0.0 : it->second;
    latencies_.add(clock_.seconds() - admitted);
    if (it != admit_seconds_.end()) admit_seconds_.erase(it);
    inner_.accept(tp);
  }
  void finish() override { inner_.finish(); }

  const util::PercentileAccumulator& latencies() const { return latencies_; }

 private:
  ResultSink& inner_;
  util::WallTimer clock_;
  std::unordered_map<JobId, double> admit_seconds_;
  util::PercentileAccumulator latencies_;
};

// ---------------------------------------------------------------------------
// JobSource: where jobs come from and how a slave executes one.
// ---------------------------------------------------------------------------

/// Scheduler-level bits carried in mp::JobFrame::flags (DESIGN.md section
/// 13).  The master sets them at dispatch; slaves translate them into an
/// ExecContext.  Numerics are untouched when no flag is set.
inline constexpr std::uint32_t kFrameCancellable = 1u << 0;  // honor kTagCancel
inline constexpr std::uint32_t kFrameDegraded = 1u << 1;     // brownout: no endgame

/// Per-dispatch execution context a slave passes into the source's 3-arg
/// execute().  `cancelled` is empty unless the frame was cancellable; when
/// set, the source polls it once per tracker step (TrackerOptions::
/// cancel_poll) and stops with PathStatus::kCancelled within one step.
struct ExecContext {
  std::function<bool()> cancelled;
  bool degraded = false;  // brownout level >= kNoEndgame at dispatch time
};

class JobSource {
 public:
  virtual ~JobSource() = default;

  // ---- master side (rank 0 only; never called concurrently) ----

  /// Jobs dispatchable right now.  For tree sources this can grow when
  /// consume() turns a result into new jobs.
  virtual std::size_t ready() const = 0;
  /// Pop the next ready job.  Precondition: ready() > 0.
  virtual JobId pop() = 0;
  /// Return a job to the FRONT of the ready queue (death re-queue).  The
  /// source must retain enough state to re-issue job_payload(id) for any
  /// popped-but-unconsumed job.
  virtual void requeue(JobId id) = 0;
  /// The job description a slave needs to execute `id`.
  virtual std::vector<std::byte> job_payload(JobId id) const = 0;
  /// Consume a finished job on the master.  May create new ready jobs (the
  /// session wakes parked slaves afterwards).  Returns false for a stale
  /// result the sink must not see (e.g. a superseded Pieri retry attempt).
  /// The record is mutable so sources can stamp master-side provenance
  /// (PieriTreeJobSource sets tp.level) before the sink sees it.
  virtual bool consume(TrackedPath& tp) = 0;
  /// Job count of a fixed pool, or nullopt for dynamically expanding
  /// sources.  Static pre-assignment requires a fixed pool.
  virtual std::optional<std::size_t> fixed_total() const { return std::nullopt; }

  // ---- slave side (called concurrently from rank threads: must touch
  // only read-only shared state plus the caller-owned workspace; for the
  // static policy job_payload(id) must be thread-safe too) ----

  virtual homotopy::TrackerWorkspace make_workspace() const = 0;
  virtual PathResult execute(const std::vector<std::byte>& payload,
                             homotopy::TrackerWorkspace& ws) const = 0;
  /// Context-aware variant the slave loops call: sources that can honor
  /// cancellation/degradation override this; the default ignores the
  /// context, so existing sources keep their exact behavior.
  virtual PathResult execute(const std::vector<std::byte>& payload,
                             homotopy::TrackerWorkspace& ws, const ExecContext&) const {
    return execute(payload, ws);
  }
};

/// The paper's section-II workload: a fixed pool of start solutions,
/// replicated read-only on every rank.  JobId == path index.
class VectorJobSource final : public JobSource {
 public:
  explicit VectorJobSource(const PathWorkload& workload);

  /// Resume support: drop jobs a previous session already completed.
  /// Returns how many were skipped.
  std::size_t skip_completed(const std::unordered_set<JobId>& done);

  std::size_t ready() const override { return ready_.size(); }
  JobId pop() override;
  void requeue(JobId id) override { ready_.push_front(id); }
  std::vector<std::byte> job_payload(JobId id) const override;
  bool consume(TrackedPath&) override { return true; }
  std::optional<std::size_t> fixed_total() const override { return workload_->size(); }

  homotopy::TrackerWorkspace make_workspace() const override;
  PathResult execute(const std::vector<std::byte>& payload,
                     homotopy::TrackerWorkspace& ws) const override;
  /// Cancellable/degraded variant (DESIGN.md section 13): with a default
  /// context it delegates to the 2-arg overload (bit-identity preserved);
  /// otherwise it tracks under a copy of the workload's TrackerOptions with
  /// cancel_poll installed and, when degraded, endgame + dd-refine off.
  PathResult execute(const std::vector<std::byte>& payload, homotopy::TrackerWorkspace& ws,
                     const ExecContext& exec) const override;

 private:
  const PathWorkload* workload_;
  std::deque<JobId> ready_;
};

// ---------------------------------------------------------------------------
// Session: one run loop over (source, policy, sink).  Options and stats
// live in sched/api.hpp (the front-door header).
// ---------------------------------------------------------------------------

class Session {
 public:
  Session(JobSource& source, ResultSink& sink, SessionOptions opts = {});
  /// Run on `ranks` ranks.  FCFS/BatchSteal need >= 2 (rank 0 = master);
  /// static runs on >= 1 (every rank tracks its share).
  SessionStats run(int ranks);
  /// Long-lived solve service (DESIGN.md section 10): the source must be a
  /// StreamJobSource (sched/stream_source.hpp).  Admits jobs as their
  /// modeled arrival times come due, dispatches under the session policy,
  /// and drains in-flight work on shutdown (deadline via
  /// SessionOptions::serve_deadline_seconds, or stream exhaustion).  The
  /// returned stats carry the queueing metrics in .service.  FCFS and
  /// BatchSteal only; needs >= 2 ranks.
  SessionStats serve(int ranks);

 private:
  JobSource& source_;
  ResultSink& sink_;
  SessionOptions opts_;
};

/// Facade for the common composition: track a PathWorkload under
/// opts.policy, collecting the legacy report.  The four legacy run_*
/// entry points delegate here / to Session.
ParallelRunReport run_paths(const PathWorkload& workload, int ranks,
                            const SessionOptions& opts = {});

}  // namespace pph::sched
