#pragma once
// Unified scheduler sessions (DESIGN.md section 7).  The paper's two
// parallel workloads -- a fixed list of start solutions (section II) and the
// dynamically expanding Pieri tree (section III-D) -- and every dispatch
// protocol built for them compose here from three orthogonal axes:
//
//   JobSource  -- where jobs come from: a fixed pool (VectorJobSource) or a
//                 master-side expansion that creates jobs from results
//                 (PieriTreeJobSource in sched/pieri_scheduler.hpp);
//   Policy     -- how jobs reach slaves: per-job FCFS dispatch, static
//                 pre-assignment, or guided batches with master-brokered
//                 work stealing -- one shared master loop, one set of
//                 message tags (job_pool.hpp), one kill-switch and
//                 death-requeue implementation;
//   ResultSink -- where finished jobs go: an in-memory report
//                 (InMemoryReportSink), a streaming on-disk store
//                 (JsonlStoreSink in sched/result_store.hpp), or both
//                 (TeeSink).
//
// The legacy entry points (run_static, run_dynamic, run_batch,
// run_parallel_pieri) are thin wrappers over a Session; new code should
// compose a Session directly.  Scheduling never changes the numerics: for a
// given source, every policy produces bit-identical result sets.

#include <deque>
#include <optional>
#include <unordered_set>

#include "sched/job_pool.hpp"

namespace pph::sched {

/// Master-side job identity: how the session's ownership map, the result
/// store, and death re-queuing name a job.  For a VectorJobSource the id IS
/// the path index; tree sources hand out sequential ids.
using JobId = std::uint64_t;

/// Dispatch policy of a session.  The cluster simulator understands the
/// same enum (simcluster::simulate), so a simulated and a real run of one
/// experiment are selected by one type.
enum class Policy {
  kFCFS,        // per-job master/slave dispatch (paper section II-A "dynamic")
  kStatic,      // pre-assigned shares, no dispatch (paper section II-A)
  kBatchSteal,  // guided batches + brokered stealing (DESIGN.md section 2)
};

const char* policy_name(Policy policy);

/// How the static policy pre-assigns job positions to ranks.
enum class StaticAssignment {
  kBlock,   // contiguous chunks: rank r gets [r*N/P, (r+1)*N/P)
  kCyclic,  // interleaved: rank r gets r, r+P, r+2P, ...
};

// ---------------------------------------------------------------------------
// ResultSink: where finished jobs go (rank 0 only, master arrival order).
// ---------------------------------------------------------------------------

struct SessionStats;

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// One finished job.  Called on the master in arrival order (NOT sorted
  /// by index); sinks that need order sort at assembly time.
  virtual void accept(const TrackedPath& tp) = 0;
  /// Called exactly once when the session ends (flush point for stores).
  virtual void finish() {}
};

/// Collects every record in memory and assembles the legacy report.
class InMemoryReportSink final : public ResultSink {
 public:
  void accept(const TrackedPath& tp) override { paths_.push_back(tp); }
  std::size_t count() const { return paths_.size(); }
  /// The legacy ParallelRunReport: paths sorted + tallied, stats folded in.
  /// One-shot: moves the collected records out of the sink (a second copy
  /// of a million-path result set has no business existing on the master).
  ParallelRunReport report(const SessionStats& stats);

 private:
  std::vector<TrackedPath> paths_;
};

/// Drops every record: for sources that accumulate what they need inside
/// consume() (the Pieri tree keeps only live instances -- the paper's
/// section III-C memory argument), buffering per-edge records on the
/// master would defeat the point.
class DiscardSink final : public ResultSink {
 public:
  void accept(const TrackedPath&) override {}
};

/// Fan a session's results into two sinks (e.g. report + on-disk store).
class TeeSink final : public ResultSink {
 public:
  TeeSink(ResultSink& first, ResultSink& second) : first_(first), second_(second) {}
  void accept(const TrackedPath& tp) override {
    first_.accept(tp);
    second_.accept(tp);
  }
  void finish() override {
    first_.finish();
    second_.finish();
  }

 private:
  ResultSink& first_;
  ResultSink& second_;
};

// ---------------------------------------------------------------------------
// JobSource: where jobs come from and how a slave executes one.
// ---------------------------------------------------------------------------

class JobSource {
 public:
  virtual ~JobSource() = default;

  // ---- master side (rank 0 only; never called concurrently) ----

  /// Jobs dispatchable right now.  For tree sources this can grow when
  /// consume() turns a result into new jobs.
  virtual std::size_t ready() const = 0;
  /// Pop the next ready job.  Precondition: ready() > 0.
  virtual JobId pop() = 0;
  /// Return a job to the FRONT of the ready queue (death re-queue).  The
  /// source must retain enough state to re-issue job_payload(id) for any
  /// popped-but-unconsumed job.
  virtual void requeue(JobId id) = 0;
  /// The job description a slave needs to execute `id`.
  virtual std::vector<std::byte> job_payload(JobId id) const = 0;
  /// Consume a finished job on the master.  May create new ready jobs (the
  /// session wakes parked slaves afterwards).  Returns false for a stale
  /// result the sink must not see (e.g. a superseded Pieri retry attempt).
  virtual bool consume(const TrackedPath& tp) = 0;
  /// Job count of a fixed pool, or nullopt for dynamically expanding
  /// sources.  Static pre-assignment requires a fixed pool.
  virtual std::optional<std::size_t> fixed_total() const { return std::nullopt; }

  // ---- slave side (called concurrently from rank threads: must touch
  // only read-only shared state plus the caller-owned workspace; for the
  // static policy job_payload(id) must be thread-safe too) ----

  virtual homotopy::TrackerWorkspace make_workspace() const = 0;
  virtual PathResult execute(const std::vector<std::byte>& payload,
                             homotopy::TrackerWorkspace& ws) const = 0;
};

/// The paper's section-II workload: a fixed pool of start solutions,
/// replicated read-only on every rank.  JobId == path index.
class VectorJobSource final : public JobSource {
 public:
  explicit VectorJobSource(const PathWorkload& workload);

  /// Resume support: drop jobs a previous session already completed.
  /// Returns how many were skipped.
  std::size_t skip_completed(const std::unordered_set<JobId>& done);

  std::size_t ready() const override { return ready_.size(); }
  JobId pop() override;
  void requeue(JobId id) override { ready_.push_front(id); }
  std::vector<std::byte> job_payload(JobId id) const override;
  bool consume(const TrackedPath&) override { return true; }
  std::optional<std::size_t> fixed_total() const override { return workload_->size(); }

  homotopy::TrackerWorkspace make_workspace() const override;
  PathResult execute(const std::vector<std::byte>& payload,
                     homotopy::TrackerWorkspace& ws) const override;

 private:
  const PathWorkload* workload_;
  std::deque<JobId> ready_;
};

// ---------------------------------------------------------------------------
// Session: one run loop over (source, policy, sink).
// ---------------------------------------------------------------------------

struct SessionOptions {
  Policy policy = Policy::kFCFS;
  /// Static only: how pre-assigned positions interleave across ranks.
  StaticAssignment assignment = StaticAssignment::kCyclic;
  /// FCFS only: jobs handed to each slave up front (the paper uses one).
  std::size_t initial_jobs_per_slave = 1;
  /// BatchSteal only: guided shrink rate (a refill takes
  /// remaining/(factor*slaves) jobs) and the batch size floor.
  double factor = 2.0;
  std::size_t min_batch = 1;
  /// Simulated per-message latency in seconds (0 for none), charged on the
  /// sender before each send; surfaces communication overhead in-process.
  double injected_latency = 0.0;
  /// Fail-injection hook for tests: the slave at kill_slave_rank "dies"
  /// after completing this many jobs (nullopt disables); the master
  /// re-queues everything the dead slave still owned.
  std::optional<std::size_t> kill_slave_after_jobs;
  int kill_slave_rank = -1;
  /// Checkpoint control (DESIGN.md section 7 "Resume protocol"): once this
  /// many results have been accepted the master broadcasts kTagAbort,
  /// collects the slaves' completed-but-unreported results (kTagAbortFlush)
  /// into the sink, and returns early with stopped_early set.  A session
  /// whose sink is a result store can then be resumed.  nullopt runs to
  /// completion.  Not supported by the static policy (no master dispatch).
  std::optional<std::size_t> stop_after_results;
  /// Name used in validation error messages (legacy wrappers pass theirs).
  const char* who = "sched::Session";
};

struct SessionStats {
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;  // tracking time per rank
  std::size_t dispatches = 0;             // master job/batch hand-outs
  std::size_t steals = 0;                 // successful slave-to-slave steals
  std::size_t accepted = 0;               // results delivered to the sink
  bool stopped_early = false;             // stop_after_results fired
};

class Session {
 public:
  Session(JobSource& source, ResultSink& sink, SessionOptions opts = {});
  /// Run on `ranks` ranks.  FCFS/BatchSteal need >= 2 (rank 0 = master);
  /// static runs on >= 1 (every rank tracks its share).
  SessionStats run(int ranks);

 private:
  JobSource& source_;
  ResultSink& sink_;
  SessionOptions opts_;
};

/// Facade for the common composition: track a PathWorkload under
/// opts.policy, collecting the legacy report.  The four legacy run_*
/// entry points delegate here / to Session.
ParallelRunReport run_paths(const PathWorkload& workload, int ranks,
                            const SessionOptions& opts = {});

}  // namespace pph::sched
