#pragma once
// Arrival-traffic models for the solve service (DESIGN.md section 10).
//
// A StreamJobSource admits requests over time instead of all at once; the
// WHEN comes from an ArrivalProcess: a generator of inter-arrival gaps
// drawn from a pluggable traffic model.  Three models cover the usual
// queueing regimes:
//
//   BernoulliArrivals -- slotted traffic: each slot of length `slot`
//       seconds carries a request with probability p, so gaps are
//       slot * Geometric(p).  The discrete twin of Poisson traffic.
//   PoissonArrivals   -- memoryless traffic at `rate` requests/second:
//       gaps are Exponential(rate).  The M in M/G/c.
//   OnOffArrivals     -- bursty traffic: an on/off modulating phase with
//       exponentially distributed dwell times; requests are Poisson at
//       `burst_rate` during ON phases and silent during OFF.  Stresses
//       backpressure in a way smooth traffic cannot.
//
// Determinism: a process is a pure function of the Prng handed to it, so a
// fixed seed fixes the whole trace.  arrival_times() materializes the
// prefix-sum trace that both the thread runtime (Session::serve) and the
// simulator twin (simcluster::simulate_service) consume -- same trace in,
// field-by-field comparable queueing stats out.

#include <cstddef>
#include <memory>
#include <vector>

#include "util/prng.hpp"

namespace pph::sched {

/// A traffic model: draws successive inter-arrival gaps (seconds).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual const char* name() const = 0;
  /// The gap between the previous arrival (or t=0) and the next one.
  /// Must be >= 0 and finite for every draw.
  virtual double next_interarrival(util::Prng& rng) = 0;
};

/// Slotted Bernoulli traffic: P(request in a slot) = p, slots are `slot`
/// seconds long.  Gap = slot * Geometric(p) (support slot, 2*slot, ...).
class BernoulliArrivals final : public ArrivalProcess {
 public:
  BernoulliArrivals(double p, double slot_seconds);
  const char* name() const override { return "bernoulli"; }
  double next_interarrival(util::Prng& rng) override;
  /// Mean rate in requests/second (p per slot).
  double rate() const { return p_ / slot_; }

 private:
  double p_;
  double slot_;
};

/// Memoryless Poisson traffic at `rate` requests/second.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);
  const char* name() const override { return "poisson"; }
  double next_interarrival(util::Prng& rng) override;
  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Bursty on-off traffic (a Markov-modulated Poisson process with two
/// phases): ON phases last Exponential(1/mean_on) and carry Poisson
/// traffic at burst_rate; OFF phases last Exponential(1/mean_off) and are
/// silent.  Long-run mean rate = burst_rate * mean_on / (mean_on + mean_off).
class OnOffArrivals final : public ArrivalProcess {
 public:
  OnOffArrivals(double burst_rate, double mean_on_seconds, double mean_off_seconds);
  const char* name() const override { return "onoff"; }
  double next_interarrival(util::Prng& rng) override;
  /// Long-run mean rate in requests/second.
  double rate() const { return burst_rate_ * mean_on_ / (mean_on_ + mean_off_); }

 private:
  double burst_rate_;
  double mean_on_;
  double mean_off_;
  bool on_ = true;        // phase the process is currently in
  double phase_left_ = 0.0;  // seconds of the current phase remaining
  bool phase_started_ = false;
};

/// Materialize the first `n` absolute arrival times (prefix sums of the
/// process's gaps) starting from t=0.  The canonical way to build the
/// shared trace for a runtime + simulator comparison.
std::vector<double> arrival_times(ArrivalProcess& process, util::Prng& rng, std::size_t n);

}  // namespace pph::sched
