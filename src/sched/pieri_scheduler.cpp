#include "sched/pieri_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pph::sched {

using schubert::Pattern;
using schubert::PatternChart;
using schubert::PieriEdgeHomotopy;
using schubert::PieriProblem;
using schubert::PlaneCondition;

InstanceDeformation instance_deformation(std::uint64_t seed,
                                         const std::vector<std::size_t>& pivots,
                                         std::size_t attempt) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (const std::size_t piv : pivots) {
    h = (h ^ static_cast<std::uint64_t>(piv)) * 1099511628211ULL;
  }
  h = (h ^ static_cast<std::uint64_t>(attempt)) * 1099511628211ULL;
  util::Prng rng(h);
  InstanceDeformation d;
  d.gamma = rng.unit_complex();
  d.detour_s = 0.7 * rng.unit_complex();
  d.detour_u = 0.7 * rng.unit_complex();
  return d;
}

namespace {

/// Edge payload: target pattern, attempt, rescue round, start coordinates.
std::vector<std::byte> pack_edge(const std::vector<std::size_t>& pivots, std::uint32_t attempt,
                                 std::uint32_t rescue, const linalg::CVector& start) {
  mp::Packer p;
  p.write(static_cast<std::uint32_t>(pivots.size()));
  for (const std::size_t piv : pivots) p.write(static_cast<std::uint32_t>(piv));
  p.write(attempt);
  p.write(rescue);
  p.write_vector(start);
  return p.take();
}

struct EdgeMsg {
  std::vector<std::size_t> pivots;
  std::uint32_t attempt = 0;
  std::uint32_t rescue = 0;
  linalg::CVector start;
};

EdgeMsg unpack_edge(const std::vector<std::byte>& payload) {
  mp::Unpacker u(payload);
  EdgeMsg j;
  const auto np = u.read<std::uint32_t>();
  j.pivots.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) j.pivots.push_back(u.read<std::uint32_t>());
  j.attempt = u.read<std::uint32_t>();
  j.rescue = u.read<std::uint32_t>();
  j.start = u.read_vector<linalg::Complex>();
  return j;
}

}  // namespace

// ---------------------------------------------------------------------------
// PieriTreeJobSource
// ---------------------------------------------------------------------------

PieriTreeJobSource::PieriTreeJobSource(const schubert::PieriInput& input,
                                       const schubert::PieriSolverOptions& solver)
    : input_(&input),
      solver_(solver),
      poset_(input.problem),
      root_(Pattern::root(input.problem)),
      jobs_per_level_(input.problem.condition_count(), 0) {
  // Seed: the minimal pattern's trivial solution feeds its covers.
  const Pattern minimal = Pattern::minimal(input.problem);
  for (const Pattern& up : minimal.parents()) {
    Instance& inst = instance_of(up.pivots());
    const PatternChart chart(up);
    const linalg::CVector start = chart.embed_child(PatternChart(minimal), {});
    inst.starts.push_back(start);
    add_job(up.pivots(), inst.attempt, 0, static_cast<std::uint32_t>(inst.starts.size() - 1),
            start);
  }
}

PieriTreeJobSource::Instance& PieriTreeJobSource::instance_of(
    const std::vector<std::size_t>& pivots) {
  auto [it, inserted] = instances_.try_emplace(pivots);
  if (inserted) {
    it->second.expected = poset_.chain_count(Pattern(input_->problem, pivots));
    it->second.results.resize(it->second.expected);
    ++active_instances_;
    peak_active_instances_ = std::max(peak_active_instances_, active_instances_);
  }
  return it->second;
}

JobId PieriTreeJobSource::add_job(std::vector<std::size_t> pivots, std::uint32_t attempt,
                                  std::uint32_t rescue, std::uint32_t start_index,
                                  linalg::CVector start) {
  const JobId id = next_id_++;
  jobs_.emplace(id, Job{std::move(pivots), attempt, rescue, start_index, std::move(start)});
  ready_.push_back(id);
  return id;
}

JobId PieriTreeJobSource::pop() {
  const JobId id = ready_.front();
  ready_.pop_front();
  return id;
}

std::vector<std::byte> PieriTreeJobSource::job_payload(JobId id) const {
  const Job& job = jobs_.at(id);
  return pack_edge(job.pivots, job.attempt, job.rescue, job.start);
}

bool PieriTreeJobSource::consume(TrackedPath& tp) {
  const auto jt = jobs_.find(tp.index);
  if (jt == jobs_.end()) return false;  // unknown id: corrupt session state
  const Job job = std::move(jt->second);
  jobs_.erase(jt);
  const Pattern pattern(input_->problem, job.pivots);
  const std::size_t level = pattern.level();
  // Master-side provenance: slaves never know the tree level, so it is
  // stamped here, before any sink (e.g. a result store) sees the record.
  tp.level = static_cast<std::uint32_t>(level);
  Instance& inst = instances_.at(job.pivots);
  if (job.attempt != inst.attempt) {
    // Stale result from a superseded attempt; drop it.  (A full retry only
    // starts with no rescue jobs in flight, so this also covers them.)
    return false;
  }
  inst.results[job.start_index] = tp.result;
  if (job.rescue == 0) {
    ++inst.received;
    ++total_jobs_;
    ++jobs_per_level_[level - 1];
  } else {
    --inst.outstanding_rescue;
  }

  if (inst.received == inst.expected && inst.outstanding_rescue == 0) {
    // Instance complete: quality control.  Targeted same-deformation
    // rescue first (failed, suspect and colliding paths -- the start-to-
    // root correspondence is fixed by gamma, so only a same-gamma re-track
    // recovers the root a path actually leads to), then the fresh-
    // deformation whole-instance retry as the fallback.
    const auto targets = schubert::rescue_targets(inst.results, solver_);
    if (!targets.empty() && solver_.rescue && inst.rescue_round < solver_.rescue_attempts) {
      ++inst.rescue_round;
      inst.used_rescue = true;
      suspect_paths_ += targets.size();
      rescue_retracks_ += targets.size();
      inst.outstanding_rescue = targets.size();
      for (const std::size_t i : targets) {
        add_job(job.pivots, inst.attempt, inst.rescue_round, static_cast<std::uint32_t>(i),
                inst.starts[i]);
      }
      return true;
    }
    settle_instance(job.pivots, inst);
  }
  return true;
}

void PieriTreeJobSource::settle_instance(const std::vector<std::size_t>& pivots,
                                         Instance& inst) {
  const Pattern pattern(input_->problem, pivots);
  std::vector<linalg::CVector> endpoints;
  endpoints.reserve(inst.expected);
  for (const auto& r : inst.results) {
    if (r.converged()) endpoints.push_back(r.x);
  }
  const bool all_converged = endpoints.size() == inst.expected;
  const bool distinct =
      poly::deduplicate_solutions(endpoints, solver_.distinct_tolerance).size() ==
      endpoints.size();
  if ((!all_converged || !distinct) && inst.attempt < solver_.max_retries) {
    // Retry the whole instance with a fresh deformation.
    ++inst.attempt;
    inst.rescue_round = 0;
    inst.received = 0;
    inst.results.assign(inst.expected, {});
    for (std::size_t i = 0; i < inst.starts.size(); ++i) {
      add_job(pivots, inst.attempt, 0, static_cast<std::uint32_t>(i), inst.starts[i]);
    }
    return;
  }
  if (!all_converged || !distinct) {
    failures_ += inst.expected -
                 poly::deduplicate_solutions(endpoints, solver_.distinct_tolerance).size();
  } else if (inst.used_rescue) {
    ++rescued_instances_;
  }
  if (pattern == root_) {
    root_solutions_ = endpoints;
  } else {
    // Spawn the child jobs of every parent pattern (paper: "the master
    // generates at most p new jobs per returned result" -- batched here
    // per instance for the deformation consistency).
    const PatternChart chart(pattern);
    for (const Pattern& up : pattern.parents()) {
      Instance& next = instance_of(up.pivots());
      const PatternChart up_chart(up);
      for (const auto& end : endpoints) {
        const linalg::CVector start = up_chart.embed_child(chart, end);
        next.starts.push_back(start);
        add_job(up.pivots(), next.attempt, 0,
                static_cast<std::uint32_t>(next.starts.size() - 1), start);
      }
    }
  }
  // Instance memory dies here (the Pieri-tree memory argument).
  instances_.erase(pivots);
  --active_instances_;
}

homotopy::TrackerWorkspace PieriTreeJobSource::make_workspace() const {
  homotopy::TrackerWorkspace ws;
  // Family-level evaluation scratch (no edge homotopy exists yet): every
  // compiled edge tape evaluates through it, refreshing the coefficient
  // caches when the owning instance changes.
  if (solver_.compiled_eval) ws.hws = std::make_unique<schubert::PieriEvalWorkspace>();
  return ws;
}

PathResult PieriTreeJobSource::execute(const std::vector<std::byte>& payload,
                                       homotopy::TrackerWorkspace& ws) const {
  const EdgeMsg job = unpack_edge(payload);
  const Pattern pattern(input_->problem, job.pivots);
  const std::size_t level = pattern.level();
  const PatternChart chart(pattern);
  const std::vector<PlaneCondition> fixed(input_->conditions.begin(),
                                          input_->conditions.begin() + (level - 1));
  const PlaneCondition& target = input_->conditions[level - 1];
  const InstanceDeformation def =
      instance_deformation(solver_.gamma_seed, job.pivots, job.attempt);
  PieriEdgeHomotopy h(chart, fixed, target, def.gamma, def.detour_s, def.detour_u);
  h.set_compiled(solver_.compiled_eval);
  // Keep the slave's family workspace across edges; only a cold caller
  // (legacy tests constructing a bare TrackerWorkspace) binds here.
  if (solver_.compiled_eval && !dynamic_cast<schubert::PieriEvalWorkspace*>(ws.hws.get())) {
    ws.bind(h);
  }
  auto r = homotopy::track_path(h, job.start,
                                schubert::attempt_tracker(solver_, job.attempt, job.rescue), ws);
  r.rescue_attempts = job.attempt + job.rescue;
  r.rescued = job.rescue > 0 && r.converged();
  return r;
}

void PieriTreeJobSource::assemble(ParallelPieriReport& report) const {
  report.expected_count = poset_.root_count();
  report.total_jobs = total_jobs_;
  report.failures = failures_;
  report.jobs_per_level = jobs_per_level_;
  report.peak_active_instances = peak_active_instances_;
  report.rescue_retracks = rescue_retracks_;
  report.rescued_instances = rescued_instances_;
  report.suspect_paths = suspect_paths_;
  const PatternChart root_chart(root_);
  for (const auto& coords : root_solutions_) {
    report.solutions.emplace_back(root_chart, coords);
  }
  for (const auto& sol : report.solutions) {
    const double res = sol.max_residual(input_->conditions);
    report.max_residual = std::max(report.max_residual, res);
    if (res < solver_.verify_tolerance) ++report.verified;
  }
  report.distinct =
      poly::deduplicate_solutions(root_solutions_, solver_.distinct_tolerance).size();
}

std::vector<std::vector<linalg::Complex>> canonical_solution_set(
    const std::vector<schubert::PieriMap>& solutions) {
  std::vector<std::vector<linalg::Complex>> out;
  out.reserve(solutions.size());
  for (const auto& sol : solutions) out.push_back(sol.coords());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a[k].real() != b[k].real()) return a[k].real() < b[k].real();
      if (a[k].imag() != b[k].imag()) return a[k].imag() < b[k].imag();
    }
    return false;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Facade (and its legacy-shaped deprecated twin)
// ---------------------------------------------------------------------------

ParallelPieriReport run_pieri(const schubert::PieriInput& input, int ranks,
                              const ParallelPieriOptions& opts) {
  if (opts.policy == Policy::kStatic) {
    throw std::invalid_argument(
        "run_pieri: tree jobs are created by results; no static pre-assignment "
        "exists");
  }
  if (input.conditions.size() != input.problem.condition_count()) {
    throw std::invalid_argument("run_pieri: wrong number of conditions");
  }

  PieriTreeJobSource source(input, opts.solver);
  // The tree source accumulates everything the report needs in consume();
  // buffering per-edge records here would break the section III-C memory
  // bound that peak_active_instances measures.
  DiscardSink sink;
  SessionOptions so;
  so.policy = opts.policy;
  so.factor = opts.factor;
  so.min_batch = opts.min_batch;
  so.injected_latency = opts.injected_latency;
  so.kill_slave_after_jobs = opts.kill_slave_after_jobs;
  so.kill_slave_rank = opts.kill_slave_rank;
  so.who = "run_pieri";
  Session session(source, sink, so);
  const SessionStats stats = session.run(ranks);

  ParallelPieriReport report;
  source.assemble(report);
  report.wall_seconds = stats.wall_seconds;
  report.rank_busy_seconds = stats.rank_busy_seconds;
  report.dispatches = stats.dispatches;
  report.steals = stats.steals;
  return report;
}

ParallelPieriReport run_parallel_pieri(const schubert::PieriInput& input, int ranks,
                                       const ParallelPieriOptions& opts) {
  return run_pieri(input, ranks, opts);
}

}  // namespace pph::sched
