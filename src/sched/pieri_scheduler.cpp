#include "sched/pieri_scheduler.hpp"

#include <chrono>
#include <deque>
#include <map>
#include <thread>

#include "util/timer.hpp"

namespace pph::sched {

using schubert::Pattern;
using schubert::PatternChart;
using schubert::PieriEdgeHomotopy;
using schubert::PieriProblem;
using schubert::PlaneCondition;

InstanceDeformation instance_deformation(std::uint64_t seed,
                                         const std::vector<std::size_t>& pivots,
                                         std::size_t attempt) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (const std::size_t piv : pivots) {
    h = (h ^ static_cast<std::uint64_t>(piv)) * 1099511628211ULL;
  }
  h = (h ^ static_cast<std::uint64_t>(attempt)) * 1099511628211ULL;
  util::Prng rng(h);
  InstanceDeformation d;
  d.gamma = rng.unit_complex();
  d.detour_s = 0.7 * rng.unit_complex();
  d.detour_u = 0.7 * rng.unit_complex();
  return d;
}

namespace {

homotopy::TrackerOptions tighten(const homotopy::TrackerOptions& base, std::size_t attempt) {
  homotopy::TrackerOptions t = base;
  for (std::size_t k = 0; k < attempt; ++k) {
    t.initial_step *= 0.25;
    t.max_step *= 0.5;
    t.corrector.max_iterations += 2;
  }
  return t;
}

/// Job message: target pattern, attempt, start coordinates.
std::vector<std::byte> pack_job(const std::vector<std::size_t>& pivots, std::uint32_t attempt,
                                const linalg::CVector& start) {
  mp::Packer p;
  p.write(static_cast<std::uint32_t>(pivots.size()));
  for (const std::size_t piv : pivots) p.write(static_cast<std::uint32_t>(piv));
  p.write(attempt);
  p.write_vector(start);
  return p.take();
}

struct JobMsg {
  std::vector<std::size_t> pivots;
  std::uint32_t attempt = 0;
  linalg::CVector start;
};

JobMsg unpack_job(const std::vector<std::byte>& payload) {
  mp::Unpacker u(payload);
  JobMsg j;
  const auto np = u.read<std::uint32_t>();
  j.pivots.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) j.pivots.push_back(u.read<std::uint32_t>());
  j.attempt = u.read<std::uint32_t>();
  j.start = u.read_vector<linalg::Complex>();
  return j;
}

/// Result message: pattern, attempt, success, endpoint, seconds.
std::vector<std::byte> pack_result(const JobMsg& job, bool success, const linalg::CVector& end,
                                   double seconds) {
  mp::Packer p;
  p.write(static_cast<std::uint32_t>(job.pivots.size()));
  for (const std::size_t piv : job.pivots) p.write(static_cast<std::uint32_t>(piv));
  p.write(job.attempt);
  p.write(static_cast<std::uint8_t>(success ? 1 : 0));
  p.write(seconds);
  p.write_vector(end);
  p.write_vector(job.start);
  return p.take();
}

struct ResultMsg {
  std::vector<std::size_t> pivots;
  std::uint32_t attempt = 0;
  bool success = false;
  double seconds = 0.0;
  linalg::CVector end;
  linalg::CVector start;
};

ResultMsg unpack_result(const std::vector<std::byte>& payload) {
  mp::Unpacker u(payload);
  ResultMsg r;
  const auto np = u.read<std::uint32_t>();
  r.pivots.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) r.pivots.push_back(u.read<std::uint32_t>());
  r.attempt = u.read<std::uint32_t>();
  r.success = u.read<std::uint8_t>() != 0;
  r.seconds = u.read<double>();
  r.end = u.read_vector<linalg::Complex>();
  r.start = u.read_vector<linalg::Complex>();
  return r;
}

/// Master-side state of one (pattern, level) instance.
struct Instance {
  std::uint64_t expected = 0;   // chain count == number of incoming edges
  std::uint32_t attempt = 0;
  std::vector<linalg::CVector> starts;      // retained for retries
  std::vector<linalg::CVector> endpoints;   // successful results
  std::uint64_t received = 0;               // results of the current attempt
  std::uint64_t dispatched = 0;             // jobs sent for the current attempt
};

}  // namespace

ParallelPieriReport run_parallel_pieri(const schubert::PieriInput& input, int ranks,
                                       const ParallelPieriOptions& opts) {
  if (ranks < 2) {
    throw std::invalid_argument("run_parallel_pieri: need a master and at least one slave");
  }
  const PieriProblem& pb = input.problem;
  const std::size_t n = pb.condition_count();
  if (input.conditions.size() != n) {
    throw std::invalid_argument("run_parallel_pieri: wrong number of conditions");
  }

  ParallelPieriReport report;
  report.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  report.jobs_per_level.assign(n, 0);
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    if (comm.rank() == 0) {
      // ---------------- master ----------------
      schubert::PatternPoset poset(pb);
      report.expected_count = poset.root_count();
      std::map<std::vector<std::size_t>, Instance> instances;
      std::size_t active_instances = 0;
      std::deque<std::pair<std::vector<std::size_t>, linalg::CVector>> job_queue;
      std::deque<int> idle_slaves;  // the paper's queue of parked slaves
      for (int s = 1; s < ranks; ++s) idle_slaves.push_back(s);
      std::uint64_t outstanding = 0;

      auto instance_of = [&](const std::vector<std::size_t>& pivots) -> Instance& {
        auto [it, inserted] = instances.try_emplace(pivots);
        if (inserted) {
          it->second.expected = poset.chain_count(Pattern(pb, pivots));
          ++active_instances;
          report.peak_active_instances =
              std::max(report.peak_active_instances, active_instances);
        }
        return it->second;
      };

      auto dispatch_available = [&] {
        while (!idle_slaves.empty() && !job_queue.empty()) {
          const int slave = idle_slaves.front();
          idle_slaves.pop_front();
          auto [pivots, start] = std::move(job_queue.front());
          job_queue.pop_front();
          Instance& inst = instance_of(pivots);
          ++inst.dispatched;
          inject_latency(opts.injected_latency);
          comm.send(slave, kTagJob, pack_job(pivots, inst.attempt, start));
          ++outstanding;
        }
      };

      // Seed: the minimal pattern's trivial solution feeds its covers.
      const Pattern minimal = Pattern::minimal(pb);
      for (const Pattern& up : minimal.parents()) {
        Instance& inst = instance_of(up.pivots());
        const PatternChart chart(up);
        const linalg::CVector start = chart.embed_child(PatternChart(minimal), {});
        inst.starts.push_back(start);
        job_queue.emplace_back(up.pivots(), start);
      }
      dispatch_available();

      std::vector<linalg::CVector> root_solutions;
      const Pattern root = Pattern::root(pb);

      while (outstanding > 0) {
        const mp::Message m = comm.recv(mp::kAnySource, kTagResult);
        --outstanding;
        idle_slaves.push_back(m.source);
        const ResultMsg r = unpack_result(m.payload);
        const Pattern pattern(pb, r.pivots);
        const std::size_t level = pattern.level();
        Instance& inst = instances.at(r.pivots);
        if (r.attempt != inst.attempt) {
          // Stale result from a superseded attempt; drop it.
          dispatch_available();
          continue;
        }
        ++inst.received;
        ++report.total_jobs;
        ++report.jobs_per_level[level - 1];
        if (r.success) inst.endpoints.push_back(r.end);

        if (inst.received == inst.expected) {
          // Instance complete: quality control.
          const bool all_converged = inst.endpoints.size() == inst.expected;
          const bool distinct =
              poly::deduplicate_solutions(inst.endpoints, opts.solver.distinct_tolerance)
                  .size() == inst.endpoints.size();
          if ((!all_converged || !distinct) && inst.attempt < opts.solver.max_retries) {
            // Retry the whole instance with a fresh deformation.
            ++inst.attempt;
            inst.received = 0;
            inst.endpoints.clear();
            for (const auto& start : inst.starts) job_queue.emplace_back(r.pivots, start);
          } else {
            if (!all_converged || !distinct) {
              report.failures += inst.expected -
                                 poly::deduplicate_solutions(inst.endpoints,
                                                             opts.solver.distinct_tolerance)
                                     .size();
            }
            if (pattern == root) {
              root_solutions = inst.endpoints;
            } else {
              // Spawn the child jobs of every parent pattern (paper: "the
              // master generates at most p new jobs per returned result" --
              // batched here per instance for the deformation consistency).
              const PatternChart chart(pattern);
              for (const Pattern& up : pattern.parents()) {
                Instance& next = instance_of(up.pivots());
                const PatternChart up_chart(up);
                for (const auto& end : inst.endpoints) {
                  const linalg::CVector start = up_chart.embed_child(chart, end);
                  next.starts.push_back(start);
                  job_queue.emplace_back(up.pivots(), start);
                }
              }
            }
            // Instance memory dies here (the Pieri-tree memory argument).
            instances.erase(r.pivots);
            --active_instances;
          }
        }
        dispatch_available();
      }

      // All work done: release every slave and collect busy times.
      for (int s = 1; s < ranks; ++s) comm.send(s, kTagStop, std::vector<std::byte>{});
      for (int s = 1; s < ranks; ++s) {
        const mp::Message bm = comm.recv(s, kTagBusy);
        mp::Unpacker u(bm.payload);
        report.rank_busy_seconds[static_cast<std::size_t>(s)] = u.read<double>();
      }

      // Assemble and verify the solutions.
      const PatternChart root_chart(root);
      for (const auto& coords : root_solutions) {
        report.solutions.emplace_back(root_chart, coords);
      }
      for (const auto& sol : report.solutions) {
        const double res = sol.max_residual(input.conditions);
        report.max_residual = std::max(report.max_residual, res);
        if (res < opts.solver.verify_tolerance) ++report.verified;
      }
      report.distinct =
          poly::deduplicate_solutions(root_solutions, opts.solver.distinct_tolerance).size();
    } else {
      // ---------------- slave ----------------
      double busy = 0.0;
      homotopy::TrackerWorkspace ws;  // LU/buffer reuse across this slave's jobs
      for (;;) {
        const mp::Message m = comm.recv(0);
        if (m.tag == kTagStop) break;
        const JobMsg job = unpack_job(m.payload);
        const Pattern pattern(pb, job.pivots);
        const std::size_t level = pattern.level();
        const PatternChart chart(pattern);
        const std::vector<PlaneCondition> fixed(input.conditions.begin(),
                                                input.conditions.begin() + (level - 1));
        const PlaneCondition& target = input.conditions[level - 1];
        const InstanceDeformation def =
            instance_deformation(opts.solver.gamma_seed, job.pivots, job.attempt);
        PieriEdgeHomotopy h(chart, fixed, target, def.gamma, def.detour_s, def.detour_u);
        ws.bind(h);
        util::WallTimer job_timer;
        const auto r =
            homotopy::track_path(h, job.start, tighten(opts.solver.tracker, job.attempt), ws);
        const double seconds = job_timer.seconds();
        busy += seconds;
        inject_latency(opts.injected_latency);
        comm.send(0, kTagResult, pack_result(job, r.converged(), r.x, seconds));
      }
      mp::Packer p;
      p.write(busy);
      comm.send(0, kTagBusy, p);
    }
  });

  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace pph::sched
