#include "sched/dynamic_scheduler.hpp"

#include <chrono>
#include <deque>
#include <map>
#include <thread>

#include "util/timer.hpp"

namespace pph::sched {

ParallelRunReport run_dynamic(const PathWorkload& workload, int ranks,
                              const DynamicOptions& opts) {
  if (ranks < 2) throw std::invalid_argument("run_dynamic: need a master and at least one slave");
  validate_kill_switch(opts.kill_slave_rank, opts.kill_slave_after_jobs.has_value(), ranks,
                       "run_dynamic");
  const std::size_t total = workload.size();
  ParallelRunReport report;
  report.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    if (comm.rank() == 0) {
      // ---- master: dispatch jobs first-come-first-served ----
      std::deque<std::size_t> queue;
      for (std::size_t i = 0; i < total; ++i) queue.push_back(i);
      std::map<int, std::vector<std::size_t>> outstanding;
      std::vector<bool> dead(static_cast<std::size_t>(ranks), false);

      auto dispatch = [&](int slave) {
        if (queue.empty() || dead[static_cast<std::size_t>(slave)]) return false;
        const std::size_t index = queue.front();
        queue.pop_front();
        mp::Packer p;
        p.write(static_cast<std::uint64_t>(index));
        inject_latency(opts.injected_latency);
        comm.send(slave, kTagJob, p);
        outstanding[slave].push_back(index);
        ++report.dispatches;
        return true;
      };

      // Seed every slave with its initial jobs.
      for (int s = 1; s < ranks; ++s) {
        for (std::size_t k = 0; k < opts.initial_jobs_per_slave; ++k) dispatch(s);
      }

      std::size_t results = 0;
      while (results < total) {
        const mp::Message m = comm.recv();
        if (m.tag == kTagResult) {
          const TrackedPath tp = unpack_tracked_path(m.payload);
          std::erase(outstanding[m.source], tp.index);
          report.paths.push_back(tp);
          ++results;
          // First-come-first-served: the finishing slave gets the next job;
          // an idle slave parks on its blocking recv and is released by the
          // final stop broadcast.
          dispatch(m.source);
        } else if (m.tag == kTagDead) {
          // Failure injection: re-queue everything the dead slave held.
          dead[static_cast<std::size_t>(m.source)] = true;
          for (const std::size_t index : outstanding[m.source]) queue.push_front(index);
          outstanding[m.source].clear();
          // Kick idle live slaves now that jobs are available again.
          for (int s = 1; s < ranks; ++s) {
            if (!dead[static_cast<std::size_t>(s)] && outstanding[s].empty()) dispatch(s);
          }
        }
      }
      // All results in: release the slaves, then collect busy-time reports.
      for (int s = 1; s < ranks; ++s) {
        if (!dead[static_cast<std::size_t>(s)]) comm.send(s, kTagStop, std::vector<std::byte>{});
      }
      for (int s = 1; s < ranks; ++s) {
        if (dead[static_cast<std::size_t>(s)]) continue;
        const mp::Message m = comm.recv(s, kTagBusy);
        mp::Unpacker u(m.payload);
        report.rank_busy_seconds[static_cast<std::size_t>(s)] = u.read<double>();
      }
    } else {
      // ---- slave: busy-wait loop ----
      double tracking_seconds = 0.0;
      std::size_t completed = 0;
      homotopy::TrackerWorkspace ws(*workload.homotopy);  // reused across this slave's paths
      const bool killable =
          comm.rank() == opts.kill_slave_rank && opts.kill_slave_after_jobs.has_value();
      for (;;) {
        const mp::Message m = comm.recv(0);
        if (m.tag == kTagStop) break;
        mp::Unpacker u(m.payload);
        const auto index = static_cast<std::size_t>(u.read<std::uint64_t>());
        if (killable && completed >= *opts.kill_slave_after_jobs) {
          inject_latency(opts.injected_latency);
          comm.send(0, kTagDead, std::vector<std::byte>{});
          return;  // dies without reporting busy time
        }
        util::WallTimer job_timer;
        TrackedPath tp;
        tp.index = index;
        tp.worker = comm.rank();
        tp.result = homotopy::track_path(*workload.homotopy, (*workload.starts)[index],
                                         workload.tracker, ws);
        tp.seconds = job_timer.seconds();
        tracking_seconds += tp.seconds;
        inject_latency(opts.injected_latency);
        comm.send(0, kTagResult, pack_tracked_path(tp));
        ++completed;
      }
      mp::Packer p;
      p.write(tracking_seconds);
      comm.send(0, kTagBusy, p);
    }
  });

  report.wall_seconds = wall.seconds();
  report.tally();
  return report;
}

}  // namespace pph::sched
