#include "sched/dynamic_scheduler.hpp"

namespace pph::sched {

ParallelRunReport run_dynamic(const PathWorkload& workload, int ranks,
                              const DynamicOptions& opts) {
  SessionOptions so;
  so.policy = Policy::kFCFS;
  so.initial_jobs_per_slave = opts.initial_jobs_per_slave;
  so.injected_latency = opts.injected_latency;
  so.kill_slave_after_jobs = opts.kill_slave_after_jobs;
  so.kill_slave_rank = opts.kill_slave_rank;
  so.who = "run_dynamic";
  return run_paths(workload, ranks, so);
}

}  // namespace pph::sched
