#pragma once
// StreamJobSource: jobs that arrive over time (DESIGN.md section 10).
//
// A streaming decorator over any JobSource.  At construction it drains the
// inner source's ready queue into a pending request list and pairs request
// i with the i-th entry of a modeled arrival trace (sched/arrival.hpp).
// Until poll() observes a request's arrival time as due, the session cannot
// see it; once due it enters the bounded admission queue -- or hits
// backpressure (StreamOptions: drop the request, or block it at the door
// until the queue drains).  Inner sources that EXPAND (the Pieri tree
// creates continuation jobs inside consume()) stay streamable: freshly
// created jobs are internal continuations of admitted work and are promoted
// into the ready queue immediately, bypassing the arrival gate.
//
// The master-side serve loop (Session::serve) drives begin()/poll()/close()
// and reads the queueing metrics out of take_service().  All master-side
// calls are single-threaded; the slave-side JobSource methods delegate to
// the inner source and stay thread-safe iff the inner source's are.

#include <functional>
#include <limits>
#include <unordered_map>

#include "sched/api.hpp"
#include "sched/session.hpp"
#include "util/timer.hpp"

namespace pph::sched {

class OverloadController;

class StreamJobSource final : public JobSource {
 public:
  /// Wrap `inner`, whose CURRENT ready jobs become the request list:
  /// request i arrives at arrival_seconds[i] (absolute seconds from
  /// begin(); must be non-decreasing and cover every request -- extra
  /// trace entries are ignored).  The inner source must outlive this.
  StreamJobSource(JobSource& inner, std::vector<double> arrival_seconds,
                  StreamOptions opts = {});

  // ---- serve-loop interface (master side, rank 0 only) ----

  /// Start (or restart) the service clock: arrivals are measured from here.
  void begin();
  /// Admit every request whose arrival time is due, subject to the
  /// admission queue bound (kDrop rejects the overflow, kBlock holds it at
  /// the door for a later poll).  Returns how many jobs were admitted.
  std::size_t poll();
  /// Graceful-shutdown gate: requests that have not arrived (or are stuck
  /// at the door) are shed; nothing new will arrive.  Admitted and
  /// in-flight jobs are unaffected -- the serve loop drains them.
  void close();
  /// No further arrivals possible: close() was called or the whole trace
  /// has been admitted.
  bool closed() const;
  /// Seconds until the next pending arrival is due (0 if one is already
  /// due, +inf if none remain -- a request blocked at the door is waiting
  /// on dispatch, not on the clock, and does not count).
  double seconds_until_next_arrival() const;
  /// Snapshot the queueing metrics, finalizing the time-weighted average
  /// queue depth up to now.
  ServiceStats take_service() const;

  /// Admission observer, called with each job id the moment it is admitted
  /// (e.g. LatencySink::admit for admit->report latency percentiles).
  void set_admit_observer(std::function<void(JobId)> observer) {
    admit_observer_ = std::move(observer);
  }

  // ---- reliability-layer hooks (DESIGN.md section 13) ----

  /// Attach the brownout controller: every queue-depth change (admit,
  /// dispatch pop, requeue, readmit) is reported through observe(), and at
  /// BrownoutLevel::kShedding arrivals are shed at the door instead of
  /// admitted.  The controller must outlive the attachment; nullptr
  /// detaches.
  void set_overload(OverloadController* controller) { overload_ = controller; }

  /// Second admission hook, called with (id, service-clock seconds) at each
  /// FIRST admission -- the reliability layer stamps deadlines here;
  /// admit_observer_ above stays free for the LatencySink decorator.
  void set_admit_hook(std::function<void(JobId, double)> hook) {
    admit_hook_ = std::move(hook);
  }

  /// The service clock (seconds since begin()); deadlines and retry
  /// backoffs are measured on this clock.
  double now() const { return clock_.seconds(); }

  /// Arrivals shed at the door by brownout level 3 (a subset of
  /// ServiceStats::shed).
  std::size_t brownout_shed() const { return brownout_shed_; }

  /// Re-admit a failed request once its retry backoff elapses: back of the
  /// ready queue, but NO admitted/arrivals counters (its first admission
  /// counted) and the original admit stamp is kept, so the final sojourn
  /// sample spans every attempt.
  void readmit(JobId id);

  /// Drop an in-queue job whose deadline expired before dispatch.  True if
  /// the id was in the ready queue.
  bool remove_ready(JobId id);

  /// How a master-synthesized terminal record is accounted.
  enum class SyntheticKind { kExpired, kQuarantined };

  /// Route a synthesized terminal record (deadline expiry, quarantine)
  /// through the inner source WITHOUT counting a completion: the request
  /// lands in its own ServiceStats bucket, takes no sojourn sample, and any
  /// continuations the inner source creates inside consume() are promoted
  /// past the arrival gate exactly as in consume().
  bool consume_synthetic(TrackedPath& tp, SyntheticKind kind);

  // ---- JobSource interface (what the session sees) ----

  std::size_t ready() const override { return ready_.size(); }
  JobId pop() override;
  void requeue(JobId id) override;
  std::vector<std::byte> job_payload(JobId id) const override {
    return inner_.job_payload(id);
  }
  bool consume(TrackedPath& tp) override;
  /// Streamed pools are never "fixed": the static policy cannot pre-assign
  /// jobs that have not arrived yet.
  std::optional<std::size_t> fixed_total() const override { return std::nullopt; }

  homotopy::TrackerWorkspace make_workspace() const override {
    return inner_.make_workspace();
  }
  PathResult execute(const std::vector<std::byte>& payload,
                     homotopy::TrackerWorkspace& ws) const override {
    return inner_.execute(payload, ws);
  }
  PathResult execute(const std::vector<std::byte>& payload, homotopy::TrackerWorkspace& ws,
                     const ExecContext& exec) const override {
    return inner_.execute(payload, ws, exec);
  }

 private:
  void admit(JobId id, double now);
  void note_queue_change(double now);
  void observe_depth(double now);

  JobSource& inner_;
  std::vector<JobId> requests_;       // request i = requests_[i]
  std::vector<double> trace_;         // arrives at trace_[i]
  std::size_t next_ = 0;              // first request not yet arrived
  std::deque<JobId> door_;            // arrived, blocked by a full queue
  std::deque<JobId> ready_;           // admitted, awaiting dispatch
  StreamOptions opts_;
  bool closed_ = false;

  util::WallTimer clock_;
  std::function<void(JobId)> admit_observer_;
  std::function<void(JobId, double)> admit_hook_;
  OverloadController* overload_ = nullptr;
  std::size_t brownout_shed_ = 0;
  std::unordered_map<JobId, double> admit_seconds_;

  // Queueing metrics (ServiceStats), accumulated as events happen.
  ServiceStats service_;
  double queue_area_ = 0.0;  // integral of ready-queue depth over time
  double last_queue_event_ = 0.0;
};

}  // namespace pph::sched
