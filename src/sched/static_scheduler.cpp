#include "sched/static_scheduler.hpp"

#include "util/timer.hpp"

namespace pph::sched {

ParallelRunReport run_static(const PathWorkload& workload, int ranks,
                             StaticAssignment assignment) {
  if (ranks <= 0) throw std::invalid_argument("run_static: need at least one rank");
  const std::size_t total = workload.size();
  ParallelRunReport report;
  report.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    const std::size_t p = static_cast<std::size_t>(comm.size());
    const std::size_t r = static_cast<std::size_t>(comm.rank());

    // Pre-assigned indices for this rank.
    std::vector<std::size_t> mine;
    if (assignment == StaticAssignment::kCyclic) {
      for (std::size_t i = r; i < total; i += p) mine.push_back(i);
    } else {
      const std::size_t base = total / p;
      const std::size_t extra = total % p;
      const std::size_t begin = r * base + std::min(r, extra);
      const std::size_t count = base + (r < extra ? 1 : 0);
      for (std::size_t i = begin; i < begin + count; ++i) mine.push_back(i);
    }

    util::CpuTimer busy;
    double tracking_seconds = 0.0;
    homotopy::TrackerWorkspace ws(*workload.homotopy);  // reused across this rank's paths
    for (const std::size_t index : mine) {
      util::WallTimer job_timer;
      TrackedPath tp;
      tp.index = index;
      tp.worker = comm.rank();
      tp.result = homotopy::track_path(*workload.homotopy, (*workload.starts)[index],
                                       workload.tracker, ws);
      tp.seconds = job_timer.seconds();
      tracking_seconds += tp.seconds;
      comm.send(0, kTagResult, pack_tracked_path(tp));
    }
    // Report this rank's busy time.
    mp::Packer p_busy;
    p_busy.write(tracking_seconds);
    comm.send(0, kTagBusy, p_busy);

    if (comm.rank() == 0) {
      std::size_t results = 0, busy_reports = 0;
      while (results < total || busy_reports < p) {
        const mp::Message m = comm.recv();
        if (m.tag == kTagResult) {
          report.paths.push_back(unpack_tracked_path(m.payload));
          ++results;
        } else if (m.tag == kTagBusy) {
          mp::Unpacker u(m.payload);
          report.rank_busy_seconds[static_cast<std::size_t>(m.source)] = u.read<double>();
          ++busy_reports;
        }
      }
    }
  });

  report.wall_seconds = wall.seconds();
  report.tally();
  return report;
}

}  // namespace pph::sched
