#include "sched/static_scheduler.hpp"

namespace pph::sched {

ParallelRunReport run_static(const PathWorkload& workload, int ranks,
                             StaticAssignment assignment) {
  SessionOptions opts;
  opts.policy = Policy::kStatic;
  opts.assignment = assignment;
  opts.who = "run_static";
  return run_paths(workload, ranks, opts);
}

}  // namespace pph::sched
