#include "sched/stream_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace pph::sched {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kDrop:
      return "drop";
    case AdmissionPolicy::kBlock:
      return "block";
  }
  return "?";
}

StreamJobSource::StreamJobSource(JobSource& inner, std::vector<double> arrival_seconds,
                                 StreamOptions opts)
    : inner_(inner), trace_(std::move(arrival_seconds)), opts_(opts) {
  while (inner_.ready() > 0) requests_.push_back(inner_.pop());
  if (trace_.size() < requests_.size())
    throw std::invalid_argument(
        "StreamJobSource: arrival trace shorter than the request list");
  trace_.resize(requests_.size());
  if (!std::is_sorted(trace_.begin(), trace_.end()))
    throw std::invalid_argument("StreamJobSource: arrival trace must be non-decreasing");
}

void StreamJobSource::begin() {
  clock_.reset();
  last_queue_event_ = 0.0;
}

void StreamJobSource::note_queue_change(double now) {
  queue_area_ += static_cast<double>(ready_.size()) * (now - last_queue_event_);
  last_queue_event_ = now;
}

void StreamJobSource::admit(JobId id, double now) {
  note_queue_change(now);
  ready_.push_back(id);
  ++service_.admitted;
  service_.max_queue_depth = std::max(service_.max_queue_depth, ready_.size());
  admit_seconds_[id] = now;
  if (admit_observer_) admit_observer_(id);
}

std::size_t StreamJobSource::poll() {
  if (closed_) return 0;
  const double now = clock_.seconds();
  // Everything due crosses from pending to the door...
  while (next_ < requests_.size() && trace_[next_] <= now) {
    door_.push_back(requests_[next_]);
    ++next_;
    ++service_.arrivals;
  }
  // ...and the door admits what the queue bound allows.
  std::size_t admitted = 0;
  const std::size_t cap = opts_.queue_capacity;
  while (!door_.empty() && (cap == 0 || ready_.size() < cap)) {
    admit(door_.front(), now);
    door_.pop_front();
    ++admitted;
  }
  // kDrop rejects the overflow outright; kBlock keeps it at the door for a
  // later poll, once dispatch has drained some queue slots.
  if (!door_.empty() && opts_.on_full == AdmissionPolicy::kDrop) {
    service_.dropped += door_.size();
    door_.clear();
  }
  return admitted;
}

void StreamJobSource::close() {
  if (closed_) return;
  closed_ = true;
  service_.shed += (requests_.size() - next_) + door_.size();
  next_ = requests_.size();
  door_.clear();
}

bool StreamJobSource::closed() const {
  return closed_ || (next_ == requests_.size() && door_.empty());
}

double StreamJobSource::seconds_until_next_arrival() const {
  // A request blocked at the door is NOT a timed event: only dispatch can
  // free a queue slot, and dispatch is message-driven -- the serve loop
  // re-polls after every message, so reporting "no timed event" here keeps
  // it from busy-spinning on a full queue.
  if (closed_ || next_ == requests_.size())
    return std::numeric_limits<double>::infinity();
  const double wait = trace_[next_] - clock_.seconds();
  return wait > 0.0 ? wait : 0.0;
}

ServiceStats StreamJobSource::take_service() const {
  const double now = clock_.seconds();
  ServiceStats out = service_;
  const double area =
      queue_area_ + static_cast<double>(ready_.size()) * (now - last_queue_event_);
  out.avg_queue_depth = now > 0.0 ? area / now : 0.0;
  return out;
}

JobId StreamJobSource::pop() {
  note_queue_change(clock_.seconds());  // integrate the PRE-change depth
  const JobId id = ready_.front();
  ready_.pop_front();
  return id;
}

void StreamJobSource::requeue(JobId id) {
  note_queue_change(clock_.seconds());
  ready_.push_front(id);
  service_.max_queue_depth = std::max(service_.max_queue_depth, ready_.size());
}

bool StreamJobSource::consume(TrackedPath& tp) {
  const bool fresh = inner_.consume(tp);
  const double now = clock_.seconds();
  if (fresh) {
    ++service_.completed;
    const auto it = admit_seconds_.find(tp.index);
    if (it != admit_seconds_.end()) {
      service_.sojourn.add(now - it->second);
      admit_seconds_.erase(it);
    }
  }
  // Continuation jobs the inner source just created (the Pieri tree expands
  // inside consume()) are follow-ups of admitted work: promote them past
  // the arrival gate immediately.
  while (inner_.ready() > 0) {
    const JobId id = inner_.pop();
    ++service_.arrivals;
    admit(id, now);
  }
  return fresh;
}

}  // namespace pph::sched
