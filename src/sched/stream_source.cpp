#include "sched/stream_source.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/reliability.hpp"

namespace pph::sched {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kDrop:
      return "drop";
    case AdmissionPolicy::kBlock:
      return "block";
  }
  return "?";
}

StreamJobSource::StreamJobSource(JobSource& inner, std::vector<double> arrival_seconds,
                                 StreamOptions opts)
    : inner_(inner), trace_(std::move(arrival_seconds)), opts_(opts) {
  while (inner_.ready() > 0) requests_.push_back(inner_.pop());
  if (trace_.size() < requests_.size())
    throw std::invalid_argument(
        "StreamJobSource: arrival trace shorter than the request list");
  trace_.resize(requests_.size());
  if (!std::is_sorted(trace_.begin(), trace_.end()))
    throw std::invalid_argument("StreamJobSource: arrival trace must be non-decreasing");
}

void StreamJobSource::begin() {
  clock_.reset();
  last_queue_event_ = 0.0;
}

void StreamJobSource::note_queue_change(double now) {
  queue_area_ += static_cast<double>(ready_.size()) * (now - last_queue_event_);
  last_queue_event_ = now;
}

void StreamJobSource::observe_depth(double now) {
  if (overload_ != nullptr) overload_->observe(now, ready_.size());
}

void StreamJobSource::admit(JobId id, double now) {
  note_queue_change(now);
  ready_.push_back(id);
  ++service_.admitted;
  service_.max_queue_depth = std::max(service_.max_queue_depth, ready_.size());
  admit_seconds_[id] = now;
  if (admit_observer_) admit_observer_(id);
  if (admit_hook_) admit_hook_(id, now);
  observe_depth(now);
}

std::size_t StreamJobSource::poll() {
  if (closed_) return 0;
  const double now = clock_.seconds();
  // Everything due crosses from pending to the door...
  while (next_ < requests_.size() && trace_[next_] <= now) {
    door_.push_back(requests_[next_]);
    ++next_;
    ++service_.arrivals;
  }
  // ...and the door admits what the queue bound and the brownout allow
  // (each admit feeds the controller, so shedding can trip mid-drain).
  std::size_t admitted = 0;
  const std::size_t cap = opts_.queue_capacity;
  while (!door_.empty() && (cap == 0 || ready_.size() < cap) &&
         !(overload_ != nullptr && overload_->at_least(BrownoutLevel::kShedding))) {
    admit(door_.front(), now);
    door_.pop_front();
    ++admitted;
  }
  // Brownout level 3 sheds what is left at the door outright -- arrivals
  // were already counted, so the request conservation identity still holds.
  if (!door_.empty() && overload_ != nullptr &&
      overload_->at_least(BrownoutLevel::kShedding)) {
    service_.shed += door_.size();
    brownout_shed_ += door_.size();
    door_.clear();
  }
  // kDrop rejects the overflow outright; kBlock keeps it at the door for a
  // later poll, once dispatch has drained some queue slots.
  if (!door_.empty() && opts_.on_full == AdmissionPolicy::kDrop) {
    service_.dropped += door_.size();
    door_.clear();
  }
  return admitted;
}

void StreamJobSource::close() {
  if (closed_) return;
  closed_ = true;
  service_.shed += (requests_.size() - next_) + door_.size();
  next_ = requests_.size();
  door_.clear();
}

bool StreamJobSource::closed() const {
  return closed_ || (next_ == requests_.size() && door_.empty());
}

double StreamJobSource::seconds_until_next_arrival() const {
  // A request blocked at the door is NOT a timed event: only dispatch can
  // free a queue slot, and dispatch is message-driven -- the serve loop
  // re-polls after every message, so reporting "no timed event" here keeps
  // it from busy-spinning on a full queue.
  if (closed_ || next_ == requests_.size())
    return std::numeric_limits<double>::infinity();
  const double wait = trace_[next_] - clock_.seconds();
  return wait > 0.0 ? wait : 0.0;
}

ServiceStats StreamJobSource::take_service() const {
  const double now = clock_.seconds();
  ServiceStats out = service_;
  const double area =
      queue_area_ + static_cast<double>(ready_.size()) * (now - last_queue_event_);
  out.avg_queue_depth = now > 0.0 ? area / now : 0.0;
  return out;
}

JobId StreamJobSource::pop() {
  const double now = clock_.seconds();
  note_queue_change(now);  // integrate the PRE-change depth
  const JobId id = ready_.front();
  ready_.pop_front();
  observe_depth(now);
  return id;
}

void StreamJobSource::requeue(JobId id) {
  const double now = clock_.seconds();
  note_queue_change(now);
  ready_.push_front(id);
  service_.max_queue_depth = std::max(service_.max_queue_depth, ready_.size());
  observe_depth(now);
}

void StreamJobSource::readmit(JobId id) {
  const double now = clock_.seconds();
  note_queue_change(now);
  ready_.push_back(id);
  service_.max_queue_depth = std::max(service_.max_queue_depth, ready_.size());
  observe_depth(now);
}

bool StreamJobSource::remove_ready(JobId id) {
  const auto it = std::find(ready_.begin(), ready_.end(), id);
  if (it == ready_.end()) return false;
  const double now = clock_.seconds();
  note_queue_change(now);
  ready_.erase(it);
  observe_depth(now);
  return true;
}

bool StreamJobSource::consume(TrackedPath& tp) {
  const bool fresh = inner_.consume(tp);
  const double now = clock_.seconds();
  if (fresh) {
    ++service_.completed;
    const auto it = admit_seconds_.find(tp.index);
    if (it != admit_seconds_.end()) {
      const double sojourn = now - it->second;
      service_.sojourn.add(sojourn);
      if (overload_ != nullptr) overload_->note_sojourn(sojourn);
      admit_seconds_.erase(it);
    }
  }
  // Continuation jobs the inner source just created (the Pieri tree expands
  // inside consume()) are follow-ups of admitted work: promote them past
  // the arrival gate immediately.
  while (inner_.ready() > 0) {
    const JobId id = inner_.pop();
    ++service_.arrivals;
    admit(id, now);
  }
  return fresh;
}

bool StreamJobSource::consume_synthetic(TrackedPath& tp, SyntheticKind kind) {
  const bool fresh = inner_.consume(tp);
  const double now = clock_.seconds();
  if (fresh) {
    if (kind == SyntheticKind::kExpired) {
      ++service_.expired;
    } else {
      ++service_.quarantined;
    }
    // No sojourn sample: the request was never served, and feeding its wait
    // into the latency percentiles would conflate queueing with service.
    admit_seconds_.erase(tp.index);
  }
  while (inner_.ready() > 0) {
    const JobId id = inner_.pop();
    ++service_.arrivals;
    admit(id, now);
  }
  return fresh;
}

}  // namespace pph::sched
