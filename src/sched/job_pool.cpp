#include "sched/job_pool.hpp"

#include <algorithm>

namespace pph::sched {

void ParallelRunReport::tally() {
  std::sort(paths.begin(), paths.end(),
            [](const TrackedPath& a, const TrackedPath& b) { return a.index < b.index; });
  converged = diverged = failed = 0;
  for (const auto& tp : paths) {
    switch (tp.result.status) {
      case PathStatus::kConverged: ++converged; break;
      case PathStatus::kDiverged: ++diverged; break;
      case PathStatus::kFailed: ++failed; break;
    }
  }
}

std::vector<std::byte> pack_tracked_path(const TrackedPath& tp) {
  mp::Packer p;
  p.write(static_cast<std::uint64_t>(tp.index));
  p.write(tp.worker);
  p.write(tp.seconds);
  p.write(static_cast<int>(tp.result.status));
  p.write(tp.result.t_reached);
  p.write(tp.result.residual);
  p.write(static_cast<std::uint64_t>(tp.result.steps));
  p.write(static_cast<std::uint64_t>(tp.result.rejections));
  p.write(static_cast<std::uint64_t>(tp.result.newton_iterations));
  p.write_vector(tp.result.x);
  return p.take();
}

TrackedPath unpack_tracked_path(const std::vector<std::byte>& payload) {
  mp::Unpacker u(payload);
  TrackedPath tp;
  tp.index = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.worker = u.read<int>();
  tp.seconds = u.read<double>();
  tp.result.status = static_cast<PathStatus>(u.read<int>());
  tp.result.t_reached = u.read<double>();
  tp.result.residual = u.read<double>();
  tp.result.steps = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.result.rejections = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.result.newton_iterations = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.result.x = u.read_vector<linalg::Complex>();
  return tp;
}

}  // namespace pph::sched
