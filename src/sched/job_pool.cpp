#include "sched/job_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace pph::sched {

void ParallelRunReport::tally() {
  std::sort(paths.begin(), paths.end(),
            [](const TrackedPath& a, const TrackedPath& b) { return a.index < b.index; });
  converged = diverged = failed = expired = cancelled = 0;
  for (const auto& tp : paths) {
    switch (tp.result.status) {
      case PathStatus::kConverged: ++converged; break;
      case PathStatus::kDiverged: ++diverged; break;
      case PathStatus::kFailed: ++failed; break;
      case PathStatus::kDeadlineExpired: ++expired; break;
      case PathStatus::kCancelled: ++cancelled; break;
    }
  }
}

namespace {

// Bit equality, not operator== -- a diverged path can legitimately carry
// NaN in its endpoint or residual, and NaN != NaN would make the predicate
// non-reflexive.  "Identical" means identical bits.
bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

bool bits_equal(const linalg::Complex& a, const linalg::Complex& b) {
  return bits_equal(a.real(), b.real()) && bits_equal(a.imag(), b.imag());
}

}  // namespace

bool identical_path_results(const ParallelRunReport& a, const ParallelRunReport& b) {
  if (a.paths.size() != b.paths.size()) return false;
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    if (a.paths[i].index != b.paths[i].index) return false;
    const PathResult& ra = a.paths[i].result;
    const PathResult& rb = b.paths[i].result;
    if (ra.status != rb.status || ra.steps != rb.steps || ra.rejections != rb.rejections ||
        ra.newton_iterations != rb.newton_iterations ||
        ra.rescue_attempts != rb.rescue_attempts || ra.rescued != rb.rescued) {
      return false;
    }
    if (!bits_equal(ra.t_reached, rb.t_reached) || !bits_equal(ra.residual, rb.residual) ||
        !bits_equal(ra.last_step, rb.last_step)) {
      return false;
    }
    if (ra.x.size() != rb.x.size()) return false;
    for (std::size_t k = 0; k < ra.x.size(); ++k) {
      if (!bits_equal(ra.x[k], rb.x[k])) return false;
    }
  }
  return true;
}

std::vector<std::byte> pack_tracked_path(const TrackedPath& tp) {
  mp::Packer p;
  p.write(static_cast<std::uint64_t>(tp.index));
  p.write(tp.worker);
  p.write(tp.seconds);
  p.write(static_cast<int>(tp.result.status));
  p.write(tp.result.t_reached);
  p.write(tp.result.residual);
  p.write(static_cast<std::uint64_t>(tp.result.steps));
  p.write(static_cast<std::uint64_t>(tp.result.rejections));
  p.write(static_cast<std::uint64_t>(tp.result.newton_iterations));
  p.write(tp.result.last_step);
  p.write(tp.result.rescue_attempts);
  p.write(static_cast<std::uint8_t>(tp.result.rescued ? 1 : 0));
  p.write_vector(tp.result.x);
  return p.take();
}

TrackedPath unpack_tracked_path(const std::vector<std::byte>& payload) {
  mp::Unpacker u(payload);
  TrackedPath tp;
  tp.index = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.worker = u.read<int>();
  tp.seconds = u.read<double>();
  tp.result.status = static_cast<PathStatus>(u.read<int>());
  tp.result.t_reached = u.read<double>();
  tp.result.residual = u.read<double>();
  tp.result.steps = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.result.rejections = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.result.newton_iterations = static_cast<std::size_t>(u.read<std::uint64_t>());
  tp.result.last_step = u.read<double>();
  tp.result.rescue_attempts = u.read<std::uint32_t>();
  tp.result.rescued = u.read<std::uint8_t>() != 0;
  tp.result.x = u.read_vector<linalg::Complex>();
  return tp;
}

std::vector<std::byte> pack_tracked_path_batch(const std::vector<TrackedPath>& tps) {
  mp::Packer p;
  p.write(static_cast<std::uint64_t>(tps.size()));
  for (const auto& tp : tps) p.write_vector(pack_tracked_path(tp));
  return p.take();
}

std::vector<TrackedPath> unpack_tracked_path_batch(const std::vector<std::byte>& payload) {
  mp::Unpacker u(payload);
  const auto count = static_cast<std::size_t>(u.read<std::uint64_t>());
  std::vector<TrackedPath> tps;
  tps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tps.push_back(unpack_tracked_path(u.read_vector<std::byte>()));
  }
  return tps;
}

std::size_t guided_chunk_size(std::size_t remaining, std::size_t workers, double factor,
                              std::size_t min_chunk) {
  if (workers == 0) throw std::invalid_argument("guided_chunk_size: need workers > 0");
  if (factor <= 0.0) throw std::invalid_argument("guided_chunk_size: factor must be positive");
  if (min_chunk == 0) min_chunk = 1;
  auto chunk = static_cast<std::size_t>(static_cast<double>(remaining) /
                                        (factor * static_cast<double>(workers)));
  chunk = std::max(chunk, min_chunk);
  return std::min(chunk, remaining);
}

void inject_latency(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void validate_kill_switch(int kill_rank, bool armed, int ranks, const char* who) {
  if (kill_rank == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": kill_slave_rank 0 is the master and cannot be killed");
  }
  if (!armed || kill_rank < 0) return;
  if (kill_rank >= ranks) {
    throw std::invalid_argument(std::string(who) + ": kill_slave_rank names no such slave");
  }
  if (ranks < 3) {
    throw std::invalid_argument(std::string(who) +
                                ": fail injection needs at least one surviving slave");
  }
}

}  // namespace pph::sched
