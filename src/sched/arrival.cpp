#include "sched/arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace pph::sched {

namespace {

/// Exponential(rate) draw.  uniform() is in [0, 1); flip to (0, 1] so the
/// log is finite.
double exponential(util::Prng& rng, double rate) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

}  // namespace

BernoulliArrivals::BernoulliArrivals(double p, double slot_seconds)
    : p_(p), slot_(slot_seconds) {
  if (!(p > 0.0) || p > 1.0)
    throw std::invalid_argument("BernoulliArrivals: p must be in (0, 1]");
  if (!(slot_seconds > 0.0))
    throw std::invalid_argument("BernoulliArrivals: slot must be positive");
}

double BernoulliArrivals::next_interarrival(util::Prng& rng) {
  // Geometric(p) slot count >= 1 by inversion: ceil(log(1-U)/log(1-p)).
  if (p_ >= 1.0) return slot_;
  const double u = rng.uniform();
  const double k = std::ceil(std::log1p(-u) / std::log1p(-p_));
  return slot_ * (k < 1.0 ? 1.0 : k);
}

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  if (!(rate > 0.0)) throw std::invalid_argument("PoissonArrivals: rate must be positive");
}

double PoissonArrivals::next_interarrival(util::Prng& rng) {
  return exponential(rng, rate_);
}

OnOffArrivals::OnOffArrivals(double burst_rate, double mean_on_seconds,
                             double mean_off_seconds)
    : burst_rate_(burst_rate), mean_on_(mean_on_seconds), mean_off_(mean_off_seconds) {
  if (!(burst_rate > 0.0))
    throw std::invalid_argument("OnOffArrivals: burst_rate must be positive");
  if (!(mean_on_seconds > 0.0) || !(mean_off_seconds > 0.0))
    throw std::invalid_argument("OnOffArrivals: phase means must be positive");
}

double OnOffArrivals::next_interarrival(util::Prng& rng) {
  double gap = 0.0;
  if (!phase_started_) {
    phase_started_ = true;
    on_ = true;
    phase_left_ = exponential(rng, 1.0 / mean_on_);
  }
  for (;;) {
    if (on_) {
      const double next = exponential(rng, burst_rate_);
      if (next <= phase_left_) {
        phase_left_ -= next;
        return gap + next;
      }
      // The ON phase ends before the next candidate arrival: discard the
      // candidate (memorylessness makes this exact) and cross into OFF.
      gap += phase_left_;
      on_ = false;
      phase_left_ = exponential(rng, 1.0 / mean_off_);
    } else {
      gap += phase_left_;
      on_ = true;
      phase_left_ = exponential(rng, 1.0 / mean_on_);
    }
  }
}

std::vector<double> arrival_times(ArrivalProcess& process, util::Prng& rng,
                                  std::size_t n) {
  std::vector<double> times;
  times.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += process.next_interarrival(rng);
    times.push_back(t);
  }
  return times;
}

}  // namespace pph::sched
