#include "sched/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/prng.hpp"

namespace pph::sched {

const char* brownout_level_name(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kHealthy: return "healthy";
    case BrownoutLevel::kNoSpeculation: return "no_speculation";
    case BrownoutLevel::kNoEndgame: return "no_endgame";
    case BrownoutLevel::kShedding: return "shedding";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// OverloadController
// ---------------------------------------------------------------------------

OverloadController::OverloadController(OverloadOptions opts) : opts_(opts) {}

std::size_t OverloadController::up_threshold(int level) const {
  switch (level) {
    case 1: return opts_.depth_no_speculation;
    case 2: return opts_.depth_no_endgame;
    case 3: return opts_.depth_shed;
    default: return 0;
  }
}

bool OverloadController::wants_level(int level, std::size_t depth) const {
  const std::size_t threshold = up_threshold(level);
  if (threshold == 0) return false;  // 0 disables that rung
  if (depth >= threshold) return true;
  // Sojourn pressure escalates through the same watermarks: once the EWMA
  // crosses sojourn_high_seconds the queue is "too deep in time" even if
  // shallow in count.
  return ewma_seeded_ && ewma_ >= opts_.sojourn_high_seconds;
}

void OverloadController::step_to(double now, int level, std::size_t depth) {
  const auto from = level_;
  level_ = static_cast<BrownoutLevel>(level);
  max_level_ = std::max(max_level_, static_cast<std::size_t>(level));
  last_change_ = now;
  transitions_.push_back({now, from, level_, depth});
}

void OverloadController::observe(double now, std::size_t queue_depth) {
  if (!opts_.enabled) return;
  // Escalate immediately through every rung the depth justifies.
  while (static_cast<int>(level_) < 3 &&
         wants_level(static_cast<int>(level_) + 1, queue_depth)) {
    step_to(now, static_cast<int>(level_) + 1, queue_depth);
  }
  // De-escalate one rung at a time, hysteresis-guarded: the depth must be
  // back under low_fraction of the current rung's watermark and the dwell
  // must have elapsed since the last change.
  while (static_cast<int>(level_) > 0) {
    const std::size_t threshold = up_threshold(static_cast<int>(level_));
    const double low = opts_.low_fraction * static_cast<double>(threshold);
    if (threshold != 0 && static_cast<double>(queue_depth) > low) break;
    if (ewma_seeded_ && ewma_ >= opts_.sojourn_high_seconds) break;
    if (now - last_change_ < opts_.min_dwell_seconds) break;
    step_to(now, static_cast<int>(level_) - 1, queue_depth);
  }
}

void OverloadController::note_sojourn(double seconds) {
  if (!opts_.enabled) return;
  if (!std::isfinite(opts_.sojourn_high_seconds)) return;
  if (!ewma_seeded_) {
    ewma_ = seconds;
    ewma_seeded_ = true;
  } else {
    ewma_ += opts_.sojourn_ewma_alpha * (seconds - ewma_);
  }
}

// ---------------------------------------------------------------------------
// Deterministic backoff
// ---------------------------------------------------------------------------

double backoff_seconds(const RequestBudget& budget, std::uint64_t seed, std::uint64_t id,
                       std::size_t attempt) {
  if (attempt == 0) return 0.0;
  double wait = budget.backoff_base_seconds;
  for (std::size_t k = 1; k < attempt; ++k) wait *= budget.backoff_multiplier;
  if (budget.jitter_fraction > 0.0 && wait > 0.0) {
    // Seed from (seed, id, attempt) so the draw depends only on values both
    // the runtime and the simulator know -- never on wall-clock state.
    util::Prng rng(seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
                   (static_cast<std::uint64_t>(attempt) << 32));
    wait *= rng.uniform(1.0 - budget.jitter_fraction, 1.0 + budget.jitter_fraction);
  }
  return wait;
}

// ---------------------------------------------------------------------------
// ReliabilityState
// ---------------------------------------------------------------------------

void ReliabilityState::on_admit(std::uint64_t id, double now) {
  if (!opts_.budget.deadline_seconds) return;
  // Re-admissions after a retry keep the original deadline: the budget is
  // per request, not per attempt.
  if (deadline_of_.count(id)) return;
  const double at = now + *opts_.budget.deadline_seconds;
  deadline_of_.emplace(id, at);
  deadlines_.push({at, id});
}

void ReliabilityState::on_terminal(std::uint64_t id) {
  deadline_of_.erase(id);
  retry_pending_.erase(id);
}

std::optional<double> ReliabilityState::deadline_of(std::uint64_t id) const {
  const auto it = deadline_of_.find(id);
  if (it == deadline_of_.end()) return std::nullopt;
  return it->second;
}

void ReliabilityState::schedule_retry(std::uint64_t id, double eligible_at) {
  retry_pending_.insert(id);
  retries_.push({eligible_at, id});
}

std::optional<std::uint64_t> ReliabilityState::pop_due_retry(double now) {
  while (!retries_.empty() && retries_.top().at <= now) {
    const std::uint64_t id = retries_.top().id;
    retries_.pop();
    if (retry_pending_.erase(id) > 0) return id;  // stale entries skip
  }
  return std::nullopt;
}

std::optional<std::uint64_t> ReliabilityState::pop_due_deadline(double now) {
  while (!deadlines_.empty() && deadlines_.top().at <= now) {
    const std::uint64_t id = deadlines_.top().id;
    deadlines_.pop();
    const auto it = deadline_of_.find(id);
    if (it == deadline_of_.end()) continue;  // already terminal
    deadline_of_.erase(it);
    return id;
  }
  return std::nullopt;
}

bool ReliabilityState::cancel_retry(std::uint64_t id) {
  return retry_pending_.erase(id) > 0;
}

double ReliabilityState::seconds_until_next_event(double now) const {
  double next = std::numeric_limits<double>::infinity();
  // The heaps may carry stale tops (lazy deletion); peeking a stale top only
  // makes the serve loop wake early and sweep it away, never sleep late.
  if (!deadlines_.empty()) next = std::min(next, deadlines_.top().at);
  if (!retries_.empty()) next = std::min(next, retries_.top().at);
  if (!std::isfinite(next)) return next;
  return std::max(0.0, next - now);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

void validate_reliability(const ReliabilityOptions& opts, const std::string& who) {
  if (!opts.enabled) return;
  const auto fail = [&](const std::string& msg) {
    throw std::invalid_argument(who + ": " + msg);
  };
  const RequestBudget& b = opts.budget;
  if (b.max_attempts < 1) fail("budget.max_attempts must be >= 1");
  if (b.backoff_base_seconds < 0.0) fail("budget.backoff_base_seconds must be >= 0");
  if (b.backoff_multiplier < 1.0) fail("budget.backoff_multiplier must be >= 1");
  if (b.jitter_fraction < 0.0 || b.jitter_fraction >= 1.0) {
    fail("budget.jitter_fraction must be in [0, 1)");
  }
  if (b.deadline_seconds && (*b.deadline_seconds < 0.0 || !std::isfinite(*b.deadline_seconds))) {
    fail("budget.deadline_seconds must be finite and >= 0");
  }
  const OverloadOptions& o = opts.overload;
  if (o.enabled) {
    if (o.low_fraction <= 0.0 || o.low_fraction > 1.0) {
      fail("overload.low_fraction must be in (0, 1]");
    }
    if (o.min_dwell_seconds < 0.0) fail("overload.min_dwell_seconds must be >= 0");
    if (o.sojourn_ewma_alpha <= 0.0 || o.sojourn_ewma_alpha > 1.0) {
      fail("overload.sojourn_ewma_alpha must be in (0, 1]");
    }
    // Watermarks must be ordered where set (0 disables a rung): a deeper
    // degradation may not trip before a shallower one.
    std::size_t prev = 0;
    for (const std::size_t d : {o.depth_no_speculation, o.depth_no_endgame, o.depth_shed}) {
      if (d != 0) {
        if (d < prev) fail("overload depth watermarks must be non-decreasing");
        prev = d;
      }
    }
  }
}

}  // namespace pph::sched
