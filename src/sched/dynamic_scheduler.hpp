#pragma once
// Dynamic workload balancing with a master/slave paradigm (paper section
// II-A): each slave gets one job at the start; when it returns a result the
// master hands it the next job, first-come-first-served.  More
// communication than static assignment, but the load follows the actual
// path costs.  The master (rank 0) only dispatches.  Protocol notes in
// DESIGN.md section 2; overhead sensitivity is measured in section 3.
//
// LEGACY ENTRY POINT: run_dynamic is a thin wrapper over the unified
// session API (sched/session.hpp, DESIGN.md section 7) -- equivalent to a
// Session over a VectorJobSource with Policy::kFCFS and an
// InMemoryReportSink.  Kept for source compatibility; new code should
// compose a Session (or call sched::run_paths) directly.

#include <optional>

#include "sched/session.hpp"

namespace pph::sched {

struct DynamicOptions {
  /// Jobs handed to each slave up front (the paper uses one).
  std::size_t initial_jobs_per_slave = 1;
  /// Simulated per-message latency in seconds (0 for none); lets the thread
  /// runtime exhibit the communication overhead the paper discusses.
  double injected_latency = 0.0;
  /// Fail-injection hook for tests: a slave "dies" after completing this
  /// many jobs (nullopt disables).  The master re-queues the jobs the dead
  /// slave held.  kill_slave_rank must name a slave, never rank 0 (the
  /// master) -- run_dynamic validates this.
  std::optional<std::size_t> kill_slave_after_jobs;
  int kill_slave_rank = -1;
};

/// Track all workload paths with `ranks` ranks (rank 0 = master, so at
/// least 2 are required).
[[deprecated("compose a sched::Session (or call sched::run_paths with Policy::kFCFS)")]]
ParallelRunReport run_dynamic(const PathWorkload& workload, int ranks,
                              const DynamicOptions& opts = {});

}  // namespace pph::sched
