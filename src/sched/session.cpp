#include "sched/session.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "mp/fault.hpp"
#include "sched/reliability.hpp"
#include "sched/stream_source.hpp"
#include "util/timer.hpp"

namespace pph::sched {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFCFS: return "fcfs";
    case Policy::kStatic: return "static";
    case Policy::kBatchSteal: return "batch-steal";
  }
  return "?";
}

ParallelRunReport InMemoryReportSink::report(const SessionStats& stats) {
  ParallelRunReport r;
  r.paths = std::move(paths_);
  paths_.clear();
  r.wall_seconds = stats.wall_seconds;
  r.rank_busy_seconds = stats.rank_busy_seconds;
  r.dispatches = stats.dispatches;
  r.steals = stats.steals;
  r.tally();
  return r;
}

// ---------------------------------------------------------------------------
// VectorJobSource
// ---------------------------------------------------------------------------

VectorJobSource::VectorJobSource(const PathWorkload& workload) : workload_(&workload) {
  for (std::size_t i = 0; i < workload.size(); ++i) ready_.push_back(i);
}

std::size_t VectorJobSource::skip_completed(const std::unordered_set<JobId>& done) {
  const std::size_t before = ready_.size();
  std::erase_if(ready_, [&](JobId id) { return done.count(id) != 0; });
  return before - ready_.size();
}

JobId VectorJobSource::pop() {
  const JobId id = ready_.front();
  ready_.pop_front();
  return id;
}

std::vector<std::byte> VectorJobSource::job_payload(JobId id) const {
  mp::Packer p;
  p.write(id);
  return p.take();
}

homotopy::TrackerWorkspace VectorJobSource::make_workspace() const {
  return homotopy::TrackerWorkspace(*workload_->homotopy);
}

PathResult VectorJobSource::execute(const std::vector<std::byte>& payload,
                                    homotopy::TrackerWorkspace& ws) const {
  mp::Unpacker u(payload);
  const auto index = static_cast<std::size_t>(u.read<std::uint64_t>());
  return homotopy::track_path(*workload_->homotopy, (*workload_->starts)[index],
                              workload_->tracker, ws);
}

PathResult VectorJobSource::execute(const std::vector<std::byte>& payload,
                                    homotopy::TrackerWorkspace& ws,
                                    const ExecContext& exec) const {
  // A default context takes the exact 2-arg path: no options copy, no poll,
  // bit-identical numerics (the reliability-disabled invariant).
  if (!exec.cancelled && !exec.degraded) return execute(payload, ws);
  mp::Unpacker u(payload);
  const auto index = static_cast<std::size_t>(u.read<std::uint64_t>());
  homotopy::TrackerOptions topts = workload_->tracker;
  topts.cancel_poll = exec.cancelled;
  if (exec.degraded) {
    // Brownout level >= kNoEndgame: shed the expensive final stretch --
    // endgame geometry off, compensated (double-double) refinement off
    // everywhere.  Converged endpoints are still certified by the end
    // corrector, just without the extra-precision passes.
    topts.endgame.enabled = false;
    topts.endgame.dd_refine = false;
    topts.corrector.dd_refine = false;
    topts.end_corrector.dd_refine = false;
  }
  return homotopy::track_path(*workload_->homotopy, (*workload_->starts)[index], topts, ws);
}

namespace {

// ---------------------------------------------------------------------------
// Shared master loop.  One ownership map, one duplicate-suppression set, one
// death-requeue and one checkpoint/abort implementation; policies only decide
// how jobs reach slaves.
// ---------------------------------------------------------------------------

/// Master-side supervision state (DESIGN.md section 11), live only when
/// SupervisorOptions::enabled.  Liveness is inferred from traffic: every
/// message (result, steal bookkeeping, explicit kTagHeartbeat) refreshes
/// the sender's last-seen stamp.
struct SupervisionState {
  util::WallTimer clock;
  std::vector<double> last_seen;                    // per rank, clock seconds
  std::vector<bool> suspect;
  std::unordered_map<JobId, double> dispatched_at;  // primary dispatch stamp
  std::unordered_map<JobId, int> spec_owner;        // live speculative copy
  std::unordered_map<JobId, std::size_t> attempts;  // death-coincidence ledger
  double ewma = 0.0;                                // per-job service time
  std::size_t ewma_samples = 0;
  double last_sweep = 0.0;
};

struct MasterContext {
  mp::Comm& comm;
  JobSource& source;
  ResultSink& sink;
  const SessionOptions& opts;
  SessionStats& stats;
  const int ranks;

  std::unordered_map<JobId, int> owner;   // in-flight job -> owning slave
  std::vector<std::size_t> owned_count;   // per-rank in-flight job count
  std::vector<bool> dead;
  std::vector<bool> busy_reported;        // kTagBusy already folded into stats
  bool aborting = false;
  SupervisionState sup;

  // Reliability layer (DESIGN.md section 13), serve() only; all nullptr in
  // batch runs and when ReliabilityOptions::enabled is false.
  StreamJobSource* stream = nullptr;
  ReliabilityState* rel = nullptr;
  OverloadController* overload = nullptr;

  explicit MasterContext(mp::Comm& c, JobSource& src, ResultSink& snk,
                         const SessionOptions& o, SessionStats& st, int r)
      : comm(c), source(src), sink(snk), opts(o), stats(st), ranks(r),
        owned_count(static_cast<std::size_t>(r), 0),
        dead(static_cast<std::size_t>(r), false),
        busy_reported(static_cast<std::size_t>(r), false) {
    sup.last_seen.assign(static_cast<std::size_t>(r), 0.0);
    sup.suspect.assign(static_cast<std::size_t>(r), false);
  }

  bool sup_on() const { return opts.supervisor.enabled; }

  std::size_t alive_slaves() const {
    std::size_t n = 0;
    for (int s = 1; s < ranks; ++s) {
      if (!dead[static_cast<std::size_t>(s)]) ++n;
    }
    return n;
  }

  bool work_remains() const {
    return !owner.empty() || source.ready() > 0 ||
           (rel != nullptr && rel->pending_retries() > 0);
  }

  /// Scheduler bits stamped into every dispatched frame.
  std::uint32_t frame_flags() const {
    std::uint32_t flags = 0;
    if (rel != nullptr) flags |= kFrameCancellable;
    if (overload != nullptr && overload->at_least(BrownoutLevel::kNoEndgame)) {
      flags |= kFrameDegraded;
    }
    return flags;
  }

  /// Any message from a slave proves it alive.
  void note_message(int src) {
    if (!sup_on() || src <= 0 || src >= ranks) return;
    const auto su = static_cast<std::size_t>(src);
    sup.last_seen[su] = sup.clock.seconds();
    if (!dead[su]) sup.suspect[su] = false;  // dead is terminal
  }

  /// Stamp a (re-)dispatched job for EWMA sampling and straggler aging.
  void note_dispatch(JobId id) {
    if (sup_on()) sup.dispatched_at[id] = sup.clock.seconds();
  }

  /// How long a slave may stay silent before suspicion: the idle heartbeat
  /// window, or -- for a busy slave -- a multiple of the per-job EWMA
  /// (whichever is larger, so long jobs on slow builds are not misread as
  /// hangs).
  double silence_allowance(int s) const {
    const auto& so = opts.supervisor;
    const double idle_window = static_cast<double>(so.miss_budget) * so.heartbeat_seconds;
    const double busy_grace =
        owned_count[static_cast<std::size_t>(s)] > 0 ? so.hang_factor * sup.ewma : 0.0;
    return std::max(idle_window, busy_grace);
  }

  /// A result landed on the master: retire it from the ownership map,
  /// let the source consume it (possibly creating new jobs), and forward
  /// counted results to the sink.  Results for jobs no longer in flight
  /// (duplicates after a death re-queue) are dropped.  With a speculative
  /// copy in flight, whichever worker reported first wins -- the loser's
  /// later duplicate falls into the same drop path, so the sink sees each
  /// job exactly once and the bits never depend on who won.
  void accept_result(TrackedPath tp) {
    const auto it = owner.find(tp.index);
    if (it == owner.end()) return;
    --owned_count[static_cast<std::size_t>(it->second)];
    owner.erase(it);
    if (sup_on()) {
      if (const auto sp = sup.spec_owner.find(tp.index); sp != sup.spec_owner.end()) {
        --owned_count[static_cast<std::size_t>(sp->second)];
        if (tp.worker == sp->second) ++stats.supervision.speculation_wins;
        sup.spec_owner.erase(sp);
      }
      if (const auto d = sup.dispatched_at.find(tp.index); d != sup.dispatched_at.end()) {
        const double sample = sup.clock.seconds() - d->second;
        sup.dispatched_at.erase(d);
        sup.ewma = sup.ewma_samples == 0
                       ? sample
                       : opts.supervisor.ewma_alpha * sample +
                             (1.0 - opts.supervisor.ewma_alpha) * sup.ewma;
        ++sup.ewma_samples;
      }
    }
    // Retry-with-backoff (DESIGN.md section 13): a genuinely failed attempt
    // with budget left is withheld from the sink and re-admitted after its
    // backoff.  The attempt ledger is the SAME one the supervisor's
    // quarantine charges on worker death, so deaths and failures count
    // against one budget.  The exhausted (or past-deadline) attempt falls
    // through and delivers its real kFailed result.
    if (rel != nullptr && stream != nullptr && tp.worker >= 0 &&
        tp.result.status == PathStatus::kFailed) {
      const RequestBudget& budget = rel->options().budget;
      const std::size_t used = ++sup.attempts[tp.index];
      const auto deadline = rel->deadline_of(tp.index);
      const double now = stream->now();
      if (used < budget.max_attempts && (!deadline.has_value() || now < *deadline)) {
        const double wait = backoff_seconds(budget, rel->options().jitter_seed, tp.index, used);
        rel->schedule_retry(tp.index, now + wait);
        ++stats.reliability.retried;
        stats.reliability.backoff_wait.add(wait);
        return;
      }
    }
    sup.attempts.erase(tp.index);
    if (rel != nullptr) rel->on_terminal(tp.index);
    if (source.consume(tp)) {
      sink.accept(tp);
      ++stats.accepted;
    }
  }

  /// Quarantine: report the job as a failed PathResult so the service keeps
  /// its zero-loss accounting without re-queueing a killer input forever.
  void quarantine(JobId id) {
    TrackedPath tp;
    tp.index = id;
    tp.worker = -1;  // synthesized on the master, no worker tracked it
    tp.result.status = PathStatus::kFailed;
    // In serve mode the stream accounts the request in its own quarantined
    // bucket (NOT completed); batch runs go through plain consume().
    const bool fresh = stream != nullptr
                           ? stream->consume_synthetic(
                                 tp, StreamJobSource::SyntheticKind::kQuarantined)
                           : source.consume(tp);
    if (fresh) {
      sink.accept(tp);
      ++stats.accepted;
    }
    ++stats.supervision.quarantined;
    sup.attempts.erase(id);
    sup.dispatched_at.erase(id);
    if (rel != nullptr) rel->on_terminal(id);
  }

  /// Death re-queue shared by every policy: everything the dead slave still
  /// owned goes back to the front of the ready queue.  Under supervision a
  /// job inherits its live speculative copy instead of re-queueing, the
  /// attempt ledger is charged, and repeat offenders are quarantined.
  void requeue_dead(int s) {
    const auto su = static_cast<std::size_t>(s);
    if (dead[su]) return;  // silence-declared, then announced: count once
    dead[su] = true;
    owned_count[su] = 0;
    if (sup_on()) {
      // Speculative copies the dead slave held die with it; the primaries
      // are still owned elsewhere and need no re-queue.
      for (auto it = sup.spec_owner.begin(); it != sup.spec_owner.end();) {
        if (it->second == s) {
          it = sup.spec_owner.erase(it);
        } else {
          ++it;
        }
      }
    }
    std::vector<JobId> held;
    for (const auto& [id, own] : owner) {
      if (own == s) held.push_back(id);
    }
    // Descending + push_front puts the re-queued jobs at the front in
    // ascending id order, as the legacy schedulers did.
    std::sort(held.begin(), held.end(), std::greater<>());
    for (const JobId id : held) {
      owner.erase(id);
      if (sup_on()) {
        if (const auto sp = sup.spec_owner.find(id); sp != sup.spec_owner.end()) {
          // A live speculative copy inherits the job: no re-queue, and the
          // copy's owned_count slot already carries it.
          owner.emplace(id, sp->second);
          sup.spec_owner.erase(sp);
          continue;
        }
        if (++sup.attempts[id] >= opts.supervisor.max_attempts) {
          quarantine(id);
          continue;
        }
        ++stats.supervision.requeued_jobs;
      }
      source.requeue(id);
    }
  }

  bool should_abort() const {
    return opts.stop_after_results.has_value() && stats.accepted >= *opts.stop_after_results;
  }
};

class MasterPolicy {
 public:
  virtual ~MasterPolicy() = default;
  /// Initial hand-outs before the receive loop starts.
  virtual void seed(MasterContext& ctx) = 0;
  /// Slave `s` delivered its results (or a steal refusal) and wants work.
  virtual void refill(MasterContext& ctx, int s) = 0;
  /// The ready queue may have grown (tree expansion or death re-queue):
  /// hand work to parked slaves.
  virtual void wake_parked(MasterContext& ctx) = 0;
  /// Policy-specific message (steal bookkeeping); true when handled.
  virtual bool handle(MasterContext&, const mp::Message&) { return false; }
  virtual void on_death(MasterContext&, int) {}
  /// Supervision hooks (DESIGN.md section 11): hand back a parked/idle
  /// slave to run a speculative copy (-1 when none; `exclude` is the job's
  /// current owner) ...
  virtual int claim_idle(MasterContext&, int) { return -1; }
  /// ... and deliver one framed job copy to it in this policy's transport.
  virtual void dispatch_copy(MasterContext&, int, const mp::JobFrame&) {}
};

// ---- FCFS: per-job dispatch with an idle queue (the paper's dynamic
// protocol, plus the Pieri scheduler's parking of jobless slaves) ----------

class FcfsPolicy final : public MasterPolicy {
 public:
  void seed(MasterContext& ctx) override {
    for (int s = 1; s < ctx.ranks; ++s) {
      bool got_one = false;
      for (std::size_t k = 0; k < ctx.opts.initial_jobs_per_slave; ++k) {
        if (!dispatch_one(ctx, s)) break;
        got_one = true;
      }
      // A slave seeded with nothing parks until results create jobs (tree
      // sources) or a death re-queue frees some.
      if (!got_one) idle_.push_back(s);
    }
  }

  void refill(MasterContext& ctx, int s) override {
    if (ctx.dead[static_cast<std::size_t>(s)] || ctx.aborting) return;
    idle_.push_back(s);
    wake_parked(ctx);
  }

  void wake_parked(MasterContext& ctx) override {
    if (ctx.aborting) return;
    while (!idle_.empty() && ctx.source.ready() > 0) {
      const int s = idle_.front();
      idle_.pop_front();
      if (ctx.dead[static_cast<std::size_t>(s)]) continue;
      dispatch_one(ctx, s);
    }
  }

  int claim_idle(MasterContext& ctx, int exclude) override {
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      if (*it == exclude || ctx.dead[static_cast<std::size_t>(*it)]) continue;
      const int s = *it;
      idle_.erase(it);
      return s;
    }
    return -1;
  }

  void dispatch_copy(MasterContext& ctx, int s, const mp::JobFrame& frame) override {
    inject_latency(ctx.opts.injected_latency);
    ctx.comm.send(s, kTagJob, mp::pack_job_frame(frame));
  }

 private:
  bool dispatch_one(MasterContext& ctx, int s) {
    if (ctx.source.ready() == 0) return false;
    const JobId id = ctx.source.pop();
    mp::JobFrame frame{id, ctx.frame_flags(), ctx.source.job_payload(id)};
    inject_latency(ctx.opts.injected_latency);
    ctx.comm.send(s, kTagJob, mp::pack_job_frame(frame));
    ctx.owner.emplace(id, s);
    ctx.note_dispatch(id);
    ++ctx.owned_count[static_cast<std::size_t>(s)];
    ++ctx.stats.dispatches;
    return true;
  }

  std::deque<int> idle_;  // the paper's queue of parked slaves
};

// ---- BatchSteal: guided batches + master-brokered stealing ----------------

class BatchStealPolicy final : public MasterPolicy {
 public:
  explicit BatchStealPolicy(int ranks)
      : parked_(static_cast<std::size_t>(ranks), false),
        refused_(static_cast<std::size_t>(ranks)) {}

  void seed(MasterContext& ctx) override {
    for (int s = 1; s < ctx.ranks; ++s) refill(ctx, s);
  }

  void refill(MasterContext& ctx, int s) override {
    const auto su = static_cast<std::size_t>(s);
    if (ctx.dead[su] || ctx.aborting) return;
    if (dispatch_batch(ctx, s)) return;
    // Pool drained: broker a steal from the most loaded slave.  A load of
    // one is not worth moving (it is the victim's in-flight job).
    int victim = -1;
    std::size_t best = 1;
    for (int v = 1; v < ctx.ranks; ++v) {
      const auto vu = static_cast<std::size_t>(v);
      if (v == s || ctx.dead[vu] || refused_[su].count(v) != 0) continue;
      if (ctx.owned_count[vu] > best) {
        best = ctx.owned_count[vu];
        victim = v;
      }
    }
    if (victim >= 0) {
      inject_latency(ctx.opts.injected_latency);
      ctx.comm.send(victim, kTagStealOrder, mp::pack_steal_request({s}));
      awaiting_[victim].push_back(s);
    } else {
      parked_[su] = true;  // released by new jobs or the stop broadcast
    }
  }

  void wake_parked(MasterContext& ctx) override {
    if (ctx.aborting) return;
    for (int s = 1; s < ctx.ranks && ctx.source.ready() > 0; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (!ctx.dead[su] && parked_[su]) refill(ctx, s);
    }
  }

  bool handle(MasterContext& ctx, const mp::Message& m) override {
    if (m.tag != kTagStealNotify) return false;
    const auto src = static_cast<std::size_t>(m.source);
    mp::Unpacker u(m.payload);
    const int victim = u.read<int>();
    const auto ids = u.read_vector<std::uint64_t>();
    auto& waiting = awaiting_[victim];
    std::erase(waiting, m.source);
    if (ids.empty()) {
      refused_[src].insert(victim);
      refill(ctx, m.source);
    } else {
      for (const auto id : ids) {
        const auto it = ctx.owner.find(id);
        if (it == ctx.owner.end()) continue;  // raced with completion/death
        --ctx.owned_count[static_cast<std::size_t>(it->second)];
        it->second = m.source;
        ++ctx.owned_count[src];
      }
      ++ctx.stats.steals;
      refused_[src].clear();
    }
    return true;
  }

  void on_death(MasterContext& ctx, int s) override {
    parked_[static_cast<std::size_t>(s)] = false;
    // Unblock thieves that were waiting on the dead victim.
    std::vector<int> thieves;
    thieves.swap(awaiting_[s]);
    for (const int t : thieves) {
      if (!ctx.dead[static_cast<std::size_t>(t)]) refill(ctx, t);
    }
  }

  int claim_idle(MasterContext& ctx, int exclude) override {
    // A slave awaiting a steal reply is busy negotiating, not parked, so
    // only genuinely parked slaves are eligible.
    for (int s = 1; s < ctx.ranks; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (s == exclude || ctx.dead[su] || !parked_[su]) continue;
      parked_[su] = false;
      return s;
    }
    return -1;
  }

  void dispatch_copy(MasterContext& ctx, int s, const mp::JobFrame& frame) override {
    inject_latency(ctx.opts.injected_latency);
    ctx.comm.send(s, kTagBatch, mp::pack_job_frame_batch({frame}));
  }

 private:
  bool dispatch_batch(MasterContext& ctx, int s) {
    if (ctx.source.ready() == 0) return false;
    const auto su = static_cast<std::size_t>(s);
    const std::size_t chunk = guided_chunk_size(ctx.source.ready(), ctx.alive_slaves(),
                                                ctx.opts.factor, ctx.opts.min_batch);
    std::vector<mp::JobFrame> frames;
    frames.reserve(chunk);
    while (frames.size() < chunk && ctx.source.ready() > 0) {
      const JobId id = ctx.source.pop();
      frames.push_back({id, ctx.frame_flags(), ctx.source.job_payload(id)});
      ctx.owner.emplace(id, s);
      ctx.note_dispatch(id);
      ++ctx.owned_count[su];
    }
    inject_latency(ctx.opts.injected_latency);
    ctx.comm.send(s, kTagBatch, mp::pack_job_frame_batch(frames));
    ++ctx.stats.dispatches;
    refused_[su].clear();
    parked_[su] = false;
    return true;
  }

  std::vector<bool> parked_;
  std::vector<std::set<int>> refused_;   // victims that refused since last refill
  std::map<int, std::vector<int>> awaiting_;  // thieves awaiting a reply, per victim
};

// ---- supervision (DESIGN.md section 11) -----------------------------------

/// One death, however detected: re-queue (or quarantine) the slave's jobs,
/// let the policy clean up its bookkeeping, and hand freed work out.
void declare_dead(MasterContext& ctx, MasterPolicy& policy, int s, bool announced) {
  if (ctx.dead[static_cast<std::size_t>(s)]) return;
  if (announced) {
    ++ctx.stats.supervision.deaths_announced;
  } else {
    ++ctx.stats.supervision.deaths_detected;
  }
  ctx.requeue_dead(s);
  policy.on_death(ctx, s);
  policy.wake_parked(ctx);
}

/// The supervision sweep, run on every master tick: walk the slaves'
/// last-seen stamps through the suspect -> dead state machine, speculate
/// on over-age in-flight jobs, and fail what no surviving worker can run.
void supervise(MasterContext& ctx, MasterPolicy& policy) {
  if (!ctx.sup_on()) return;
  const auto& so = ctx.opts.supervisor;
  auto& sup = ctx.sup;
  const double now = sup.clock.seconds();
  if (now - sup.last_sweep < 0.5 * so.heartbeat_seconds) return;
  sup.last_sweep = now;

  for (int s = 1; s < ctx.ranks; ++s) {
    const auto su = static_cast<std::size_t>(s);
    if (ctx.dead[su]) continue;
    const double silent = now - sup.last_seen[su];
    const double allowance = ctx.silence_allowance(s);
    if (silent <= allowance) continue;
    if (!sup.suspect[su]) {
      sup.suspect[su] = true;
      ++ctx.stats.supervision.suspects;
    }
    if (silent > allowance * so.death_multiplier) declare_dead(ctx, policy, s, false);
  }

  // Straggler mitigation: when the pool is empty and the EWMA is seeded,
  // hand copies of the oldest over-age in-flight jobs to idle slaves.
  // First result wins in accept_result; bits cannot depend on the winner.
  // Brownout level 1 (kNoSpeculation) suppresses the copies: under
  // overload they burn capacity the queue needs (DESIGN.md section 13).
  if (so.speculate && sup.ewma_samples >= so.speculation_min_samples &&
      ctx.source.ready() == 0 && !ctx.owner.empty() &&
      !(ctx.overload != nullptr && ctx.overload->at_least(BrownoutLevel::kNoSpeculation))) {
    const double age_limit = so.speculation_factor * sup.ewma;
    std::vector<std::pair<double, JobId>> overdue;
    for (const auto& [id, at] : sup.dispatched_at) {
      if (ctx.owner.count(id) == 0 || sup.spec_owner.count(id) != 0) continue;
      if (now - at > age_limit) overdue.emplace_back(at, id);
    }
    std::sort(overdue.begin(), overdue.end());
    for (const auto& [at, id] : overdue) {
      const int s = policy.claim_idle(ctx, ctx.owner.at(id));
      if (s < 0) break;
      policy.dispatch_copy(ctx, s, {id, ctx.frame_flags(), ctx.source.job_payload(id)});
      sup.spec_owner.emplace(id, s);
      ++ctx.owned_count[static_cast<std::size_t>(s)];
      ++ctx.stats.supervision.speculative_dispatches;
    }
  }

  // Failsafe: every worker is gone but jobs remain (a poison job can
  // outlive the whole pool before its ledger fills).  Fail them through
  // the quarantine path rather than spinning forever.
  if (ctx.alive_slaves() == 0) {
    while (ctx.source.ready() > 0) ctx.quarantine(ctx.source.pop());
  }
}

// ---- the loop itself ------------------------------------------------------

/// Checkpoint shutdown (DESIGN.md section 7, "Resume protocol"): broadcast
/// kTagAbort, then drain until every alive slave has flushed.  In-flight and
/// flushed results are real completed work and still reach the sink (so a
/// resumed session re-tracks as little as possible); unstarted jobs are
/// simply dropped -- the store, not master state, is the source of truth on
/// resume.
void abort_session(MasterContext& ctx) {
  ctx.aborting = true;
  ctx.stats.stopped_early = true;
  for (int s = 1; s < ctx.ranks; ++s) {
    if (!ctx.dead[static_cast<std::size_t>(s)]) {
      inject_latency(ctx.opts.injected_latency);
      ctx.comm.send(s, kTagAbort, std::vector<std::byte>{});
    } else if (ctx.sup_on()) {
      // A dead-marked slave may be hung, not exited: the abort is what
      // releases its thread (a genuinely dead rank just absorbs it).
      ctx.comm.send(s, kTagAbort, std::vector<std::byte>{});
    }
  }
  std::size_t pending = ctx.alive_slaves();
  std::vector<bool> flushed(static_cast<std::size_t>(ctx.ranks), false);
  while (pending > 0) {
    std::optional<mp::Message> maybe;
    if (ctx.sup_on()) {
      // A slave can die uncooperatively between the broadcast and its
      // flush; a blocking recv would stall the checkpoint forever, so tick
      // and give up on anyone silent past the death window.
      maybe = ctx.comm.recv_for(ctx.opts.supervisor.heartbeat_seconds);
      if (!maybe.has_value()) {
        const double now = ctx.sup.clock.seconds();
        for (int s = 1; s < ctx.ranks; ++s) {
          const auto su = static_cast<std::size_t>(s);
          if (ctx.dead[su] || flushed[su]) continue;
          if (now - ctx.sup.last_seen[su] >
              ctx.silence_allowance(s) * ctx.opts.supervisor.death_multiplier) {
            ++ctx.stats.supervision.deaths_detected;
            ctx.requeue_dead(s);
            --pending;
          }
        }
        continue;
      }
    } else {
      maybe = ctx.comm.recv();
    }
    const mp::Message& m = *maybe;
    ctx.note_message(m.source);
    if (m.tag == kTagResult) {
      ctx.accept_result(unpack_tracked_path(m.payload));
    } else if (m.tag == kTagBatchDone || m.tag == kTagAbortFlush) {
      for (const auto& tp : unpack_tracked_path_batch(m.payload)) ctx.accept_result(tp);
      if (m.tag == kTagAbortFlush) {
        flushed[static_cast<std::size_t>(m.source)] = true;
        --pending;
      }
    } else if (m.tag == kTagDead) {
      ++ctx.stats.supervision.deaths_announced;
      ctx.requeue_dead(m.source);
      --pending;
    } else if (m.tag == kTagBusy) {
      // A fast slave's busy report can overtake the drain; fold it in here
      // so the final collection does not wait for a consumed message.
      mp::Unpacker u(m.payload);
      ctx.stats.rank_busy_seconds[static_cast<std::size_t>(m.source)] = u.read<double>();
      ctx.busy_reported[static_cast<std::size_t>(m.source)] = true;
    }
    // Steal notifies, heartbeats and the like are bookkeeping for work that
    // will never be dispatched again; ignore them.
  }
}

/// One master-side message, dispatched the same way in every loop shape
/// (batch run_master, streamed run_serve_master, tests via either).
void handle_master_message(MasterContext& ctx, MasterPolicy& policy, const mp::Message& m) {
  ctx.note_message(m.source);
  if (m.tag == kTagHeartbeat) {
    ++ctx.stats.supervision.heartbeats;  // liveness noted above; nothing else
  } else if (m.tag == kTagResult) {
    ctx.accept_result(unpack_tracked_path(m.payload));
    policy.refill(ctx, m.source);
    policy.wake_parked(ctx);  // tree growth may feed more than one slave
  } else if (m.tag == kTagBatchDone) {
    for (const auto& tp : unpack_tracked_path_batch(m.payload)) ctx.accept_result(tp);
    policy.refill(ctx, m.source);
    policy.wake_parked(ctx);
  } else if (m.tag == kTagDead) {
    declare_dead(ctx, policy, m.source, /*announced=*/true);
  } else {
    policy.handle(ctx, m);
  }
}

/// Shared master epilogue: release the slaves (unless an abort already
/// did), then collect busy-time reports (filtered receives skip stray
/// in-flight messages; dead slaves never report, and the abort drain may
/// have folded some reports in already).
void finish_master(MasterContext& ctx) {
  if (ctx.sup_on()) ctx.stats.supervision.ewma_job_seconds = ctx.sup.ewma;
  if (!ctx.aborting) {
    for (int s = 1; s < ctx.ranks; ++s) {
      // Under supervision the stop is broadcast to dead-marked slaves too:
      // a hung (not exited) thread wakes on it, so the join completes.
      if (!ctx.dead[static_cast<std::size_t>(s)] || ctx.sup_on()) {
        ctx.comm.send(s, kTagStop, std::vector<std::byte>{});
      }
    }
  }
  if (!ctx.sup_on()) {
    for (int s = 1; s < ctx.ranks; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (ctx.dead[su] || ctx.busy_reported[su]) continue;
      const mp::Message m = ctx.comm.recv(s, kTagBusy);
      mp::Unpacker u(m.payload);
      ctx.stats.rank_busy_seconds[su] = u.read<double>();
    }
    return;
  }
  // Under supervision a rank can have died uncooperatively without ever
  // being declared dead: a speculative copy may have completed its last job
  // before the silence sweep fired, so the loop above exited with the rank
  // still marked alive.  A blocking recv on its busy report would deadlock;
  // tick instead, and give up on anyone silent past the death window.
  const auto missing = [&] {
    for (int s = 1; s < ctx.ranks; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (!ctx.dead[su] && !ctx.busy_reported[su]) return true;
    }
    return false;
  };
  while (missing()) {
    if (auto m = ctx.comm.recv_for(ctx.opts.supervisor.heartbeat_seconds)) {
      ctx.note_message(m->source);
      const auto su = static_cast<std::size_t>(m->source);
      if (m->tag == kTagBusy) {
        mp::Unpacker u(m->payload);
        ctx.stats.rank_busy_seconds[su] = u.read<double>();
        ctx.busy_reported[su] = true;
      } else if (m->tag == kTagDead) {
        // An announced death whose jobs were all finished by speculative
        // copies: the main loop exited before this message was processed.
        ++ctx.stats.supervision.deaths_announced;
        ctx.requeue_dead(m->source);
      }
      // Heartbeats, duplicate results from speculation losers, and steal
      // bookkeeping carry no busy time; note_message above was all we owed.
      continue;
    }
    const double now = ctx.sup.clock.seconds();
    for (int s = 1; s < ctx.ranks; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (ctx.dead[su] || ctx.busy_reported[su]) continue;
      if (now - ctx.sup.last_seen[su] >
          ctx.silence_allowance(s) * ctx.opts.supervisor.death_multiplier) {
        ++ctx.stats.supervision.deaths_detected;
        ctx.requeue_dead(s);  // no jobs left to re-queue; marks the rank dead
      }
    }
  }
}

void run_master(MasterContext& ctx, MasterPolicy& policy) {
  policy.seed(ctx);
  while (ctx.work_remains()) {
    if (ctx.should_abort()) {
      abort_session(ctx);
      break;
    }
    if (ctx.sup_on()) {
      // Timed tick instead of a blocking recv: silence is information.
      if (auto m = ctx.comm.recv_for(ctx.opts.supervisor.heartbeat_seconds)) {
        handle_master_message(ctx, policy, *m);
      }
      supervise(ctx, policy);
    } else {
      handle_master_message(ctx, policy, ctx.comm.recv());
    }
  }
  finish_master(ctx);
}

/// The reliability sweep (DESIGN.md section 13), run on every serve tick:
/// re-admit retries whose backoff elapsed, then expire requests whose
/// deadline passed.  An expired request is removed from wherever it lives
/// -- the in-flight owner map (the owner gets a kTagCancel), the ready
/// queue, or the retry heap -- and a kDeadlineExpired result is synthesized
/// so the sink sees exactly one terminal record per request.  Returns true
/// when anything changed (parked slaves should be woken / the loop should
/// re-evaluate before sleeping).
bool reliability_sweep(MasterContext& ctx, StreamJobSource& stream) {
  if (ctx.rel == nullptr) return false;
  bool changed = false;
  const double now = stream.now();
  while (const auto due = ctx.rel->pop_due_retry(now)) {
    stream.readmit(*due);
    changed = true;
  }
  const auto send_cancel = [&](int s, JobId id) {
    if (ctx.dead[static_cast<std::size_t>(s)]) return;  // absorbed anyway
    mp::Packer p;
    p.write(static_cast<std::uint64_t>(id));
    ctx.comm.send(s, kTagCancel, p.take());
  };
  while (const auto due = ctx.rel->pop_due_deadline(now)) {
    const JobId id = *due;
    if (const auto it = ctx.owner.find(id); it != ctx.owner.end()) {
      // In flight: stop waiting.  The owner (and any speculative copy) is
      // told to stop tracking; its eventual reply -- the cancelled stub or
      // even a completed result that raced the cancel -- finds no owner in
      // accept_result and is dropped, so the synthesized record below is
      // the request's one and only terminal result.
      --ctx.owned_count[static_cast<std::size_t>(it->second)];
      send_cancel(it->second, id);
      ctx.owner.erase(it);
      if (const auto sp = ctx.sup.spec_owner.find(id); sp != ctx.sup.spec_owner.end()) {
        --ctx.owned_count[static_cast<std::size_t>(sp->second)];
        send_cancel(sp->second, id);
        ctx.sup.spec_owner.erase(sp);
      }
      ctx.sup.dispatched_at.erase(id);
      ++ctx.stats.reliability.cancelled;
    } else if (stream.remove_ready(id)) {
      // Expired while still queued: shed before any worker saw it.
    } else if (!ctx.rel->cancel_retry(id)) {
      // Not in flight, not queued, not awaiting a retry: the request went
      // terminal between the heap push and this pop; nothing to synthesize.
      continue;
    }
    TrackedPath tp;
    tp.index = id;
    tp.worker = -1;  // synthesized on the master
    tp.result.status = PathStatus::kDeadlineExpired;
    if (stream.consume_synthetic(tp, StreamJobSource::SyntheticKind::kExpired)) {
      ctx.sink.accept(tp);
      ++ctx.stats.accepted;
    }
    ctx.sup.attempts.erase(id);
    ctx.rel->on_terminal(id);
    changed = true;
  }
  return changed;
}

/// The solve-service master loop (DESIGN.md section 10): admit arrivals as
/// they come due, dispatch under the policy, sleep until the next timed
/// event (arrival, per-request deadline, retry eligibility, serve deadline)
/// or until a message lands, and on shutdown drain everything admitted or
/// in flight before releasing the slaves.
void run_serve_master(MasterContext& ctx, MasterPolicy& policy, StreamJobSource& stream) {
  stream.begin();
  util::WallTimer wall;
  stream.poll();                    // a trace can start at t=0 (burst workloads)
  reliability_sweep(ctx, stream);   // deadline-0 requests expire AT admission
  policy.seed(ctx);                 // slaves with nothing to do park until arrivals come
  for (;;) {
    const std::size_t admitted = stream.poll();
    const bool swept = reliability_sweep(ctx, stream);
    if (admitted > 0 || swept) policy.wake_parked(ctx);
    bool handled = false;
    while (auto m = ctx.comm.try_recv()) {
      handle_master_message(ctx, policy, *m);
      handled = true;
      if (ctx.should_abort()) break;
    }
    if (ctx.should_abort()) {
      abort_session(ctx);
      break;
    }
    supervise(ctx, policy);  // may free or fail work: run before the exit check
    const auto& deadline = ctx.opts.serve_deadline_seconds;
    if (deadline.has_value() && wall.seconds() >= *deadline) stream.close();
    if (stream.closed() && !ctx.work_remains()) break;
    if (handled || admitted > 0 || swept) continue;  // state changed: re-evaluate first
    // Nothing due and nothing queued: sleep until the next timed event or
    // the next message, whichever comes first; under supervision the wait
    // is additionally bounded by the heartbeat tick.
    double wait = stream.seconds_until_next_arrival();
    if (ctx.rel != nullptr) {
      wait = std::min(wait, ctx.rel->seconds_until_next_event(stream.now()));
    }
    if (deadline.has_value()) wait = std::min(wait, std::max(*deadline - wall.seconds(), 0.0));
    if (ctx.sup_on()) wait = std::min(wait, ctx.opts.supervisor.heartbeat_seconds);
    if (std::isinf(wait)) {
      // No timed event left: only in-flight work remains, so the next
      // state change is by message.
      handle_master_message(ctx, policy, ctx.comm.recv());
    } else if (wait > 0.0) {
      if (auto m = ctx.comm.recv_for(wait)) handle_master_message(ctx, policy, *m);
    }
    // wait == 0: an arrival or expiry is due; the sweep at the top takes it.
  }
  finish_master(ctx);
}

// ---------------------------------------------------------------------------
// Slave loops.  Fault injection is consulted at job boundaries: the plan is
// the single fault source (the legacy kill switch arrives here as one
// kDieAnnounced action).
// ---------------------------------------------------------------------------

/// A hung rank does no work and sends nothing -- not even heartbeats -- but
/// its thread stays parked on the mailbox so the world remains joinable;
/// only the master's shutdown/abort broadcast releases it.
void hang_until_released(mp::Comm& comm) {
  for (;;) {
    const mp::Message m = comm.recv();
    if (m.tag == kTagStop || m.tag == kTagAbort) return;
  }
}

/// Consult the injector at a job boundary: arms straggler sleep (and takes
/// it) as a side effect, and returns the terminal fault due now, if any --
/// the caller acts on it and returns without a busy report, exactly as the
/// legacy kill switch did.
std::optional<mp::FaultKind> fault_at_job_boundary(mp::Comm& comm, mp::FaultInjector* fault,
                                                   std::size_t completed,
                                                   std::uint64_t job_id) {
  if (fault == nullptr) return std::nullopt;
  const auto terminal = fault->on_job_start(comm.rank(), completed, job_id);
  if (!terminal.has_value()) {
    mp::FaultInjector::sleep_for(fault->straggle_seconds(comm.rank()));
  }
  return terminal;
}

/// Drain every queued kTagCancel from the master into the slave's cancelled
/// set.  Cheap enough to call from the tracker's per-step poll: one mutex
/// probe of the mailbox per step.
void drain_cancels(mp::Comm& comm, std::unordered_set<std::uint64_t>& cancelled) {
  while (auto c = comm.try_recv(0, kTagCancel)) {
    mp::Unpacker u(c->payload);
    cancelled.insert(u.read<std::uint64_t>());
  }
}

/// The ExecContext for one dispatched frame: cancellable frames poll the
/// mailbox for kTagCancel once per tracker step; stale cancels for jobs this
/// slave no longer owns (stolen away, already finished) just sit in the set
/// harmlessly.
ExecContext make_exec_context(mp::Comm& comm, const mp::JobFrame& frame,
                              std::unordered_set<std::uint64_t>& cancelled) {
  ExecContext exec;
  exec.degraded = (frame.flags & kFrameDegraded) != 0;
  if ((frame.flags & kFrameCancellable) != 0) {
    exec.cancelled = [&comm, &cancelled, id = frame.id] {
      drain_cancels(comm, cancelled);
      return cancelled.count(id) != 0;
    };
  }
  return exec;
}

void run_fcfs_slave(mp::Comm& comm, const JobSource& source, const SessionOptions& opts,
                    mp::FaultInjector* fault) {
  double tracking_seconds = 0.0;
  std::size_t completed = 0;
  homotopy::TrackerWorkspace ws = source.make_workspace();
  const bool beacon = opts.supervisor.enabled;
  std::unordered_set<std::uint64_t> cancelled_ids;
  bool aborted = false;
  for (;;) {
    mp::Message m;
    if (beacon) {
      // Idle heartbeat loop: while no work is queued, tell the master once
      // per interval that this rank is alive (results themselves refresh
      // liveness, so a busy slave need not beacon).
      for (;;) {
        if (auto got = comm.recv_for(opts.supervisor.heartbeat_seconds, 0)) {
          m = std::move(*got);
          break;
        }
        comm.send(0, kTagHeartbeat, std::vector<std::byte>{});
      }
    } else {
      m = comm.recv(0);
    }
    if (m.tag == kTagStop) break;
    if (m.tag == kTagAbort) {
      aborted = true;
      break;
    }
    if (m.tag == kTagCancel) {
      // A cancel that lands between jobs: the job is gone from this slave
      // (finished, or never arrived); remember the id and move on.
      mp::Unpacker u(m.payload);
      cancelled_ids.insert(u.read<std::uint64_t>());
      continue;
    }
    const mp::JobFrame frame = mp::unpack_job_frame(m.payload);
    if (const auto f = fault_at_job_boundary(comm, fault, completed, frame.id)) {
      if (*f == mp::FaultKind::kDieAnnounced) {
        inject_latency(opts.injected_latency);
        comm.send(0, kTagDead, std::vector<std::byte>{});
      } else if (*f == mp::FaultKind::kHang) {
        hang_until_released(comm);
      }
      return;  // dies without reporting busy time (kDieSilently: no message)
    }
    util::WallTimer job_timer;
    TrackedPath tp;
    tp.index = frame.id;
    tp.worker = comm.rank();
    tp.result = source.execute(frame.payload, ws, make_exec_context(comm, frame, cancelled_ids));
    tp.seconds = job_timer.seconds();
    tracking_seconds += tp.seconds;
    cancelled_ids.erase(frame.id);
    inject_latency(opts.injected_latency);
    // A cancelled stub is still sent: the master dropped the job from its
    // owner map when it cancelled, so this reply is what re-enters the
    // slave into the idle queue (and is otherwise ignored).
    comm.send(0, kTagResult, pack_tracked_path(tp));
    ++completed;
  }
  if (aborted) {
    // FCFS slaves hold no unreported results; the flush is the ack the
    // master counts alive slaves by.
    inject_latency(opts.injected_latency);
    comm.send(0, kTagAbortFlush, pack_tracked_path_batch({}));
  }
  mp::Packer p;
  p.write(tracking_seconds);
  comm.send(0, kTagBusy, p);
}

void run_batch_slave(mp::Comm& comm, const JobSource& source, const SessionOptions& opts,
                     mp::FaultInjector* fault) {
  std::deque<mp::JobFrame> mine;
  std::vector<TrackedPath> pending;
  double tracking_seconds = 0.0;
  std::size_t completed = 0;
  homotopy::TrackerWorkspace ws = source.make_workspace();
  const bool beacon = opts.supervisor.enabled;
  std::unordered_set<std::uint64_t> cancelled_ids;
  util::WallTimer since_beacon;
  bool stopped = false;
  bool aborted = false;

  auto handle = [&](const mp::Message& m) {
    if (m.tag == kTagCancel) {
      mp::Unpacker u(m.payload);
      cancelled_ids.insert(u.read<std::uint64_t>());
    } else if (m.tag == kTagBatch) {
      for (auto& frame : mp::unpack_job_frame_batch(m.payload)) {
        mine.push_back(std::move(frame));
      }
    } else if (m.tag == kTagStealOrder) {
      // Donate the back half of the local queue straight to the thief
      // (an empty reply is a refusal; the thief reports it either way).
      const auto req = mp::unpack_steal_request(m.payload);
      std::vector<mp::JobFrame> donated;
      for (std::size_t k = mine.size() / 2; k > 0; --k) {
        donated.push_back(std::move(mine.back()));
        mine.pop_back();
      }
      inject_latency(opts.injected_latency);
      comm.send(req.thief, kTagStealReply, mp::pack_job_frame_batch(donated));
    } else if (m.tag == kTagStealReply) {
      auto frames = mp::unpack_job_frame_batch(m.payload);
      std::vector<std::uint64_t> ids;
      ids.reserve(frames.size());
      for (const auto& frame : frames) ids.push_back(frame.id);
      for (auto& frame : frames) mine.push_back(std::move(frame));
      // One-way ownership notification so the master's map stays exact.
      mp::Packer p;
      p.write(m.source);
      p.write_vector(ids);
      inject_latency(opts.injected_latency);
      comm.isend(0, kTagStealNotify, p.take());
    } else if (m.tag == kTagStop) {
      stopped = true;
    } else if (m.tag == kTagAbort) {
      stopped = true;
      aborted = true;
    }
  };

  while (!stopped) {
    if (mine.empty()) {
      if (beacon) {
        // Idle heartbeat loop (any source: steal replies land here too).
        if (auto m = comm.recv_for(opts.supervisor.heartbeat_seconds)) {
          handle(*m);
        } else {
          comm.send(0, kTagHeartbeat, std::vector<std::byte>{});
          since_beacon.reset();
        }
      } else {
        handle(comm.recv());
      }
      continue;
    }
    // Drain control traffic (steal orders, late batches) between jobs.
    while (auto m = comm.try_recv()) {
      handle(*m);
      if (stopped) break;
    }
    if (stopped || mine.empty()) continue;
    if (const auto f = fault_at_job_boundary(comm, fault, completed, mine.front().id)) {
      if (*f == mp::FaultKind::kDieAnnounced) {
        // A cooperative death still serves queued steal orders with
        // refusals so no thief hangs on a reply that will never come;
        // uncooperative kinds leave the thieves for the supervisor.
        while (auto so = comm.try_recv(mp::kAnySource, kTagStealOrder)) {
          const auto req = mp::unpack_steal_request(so->payload);
          inject_latency(opts.injected_latency);
          comm.send(req.thief, kTagStealReply, mp::pack_job_frame_batch({}));
        }
        inject_latency(opts.injected_latency);
        comm.send(0, kTagDead, std::vector<std::byte>{});
      } else if (*f == mp::FaultKind::kHang) {
        hang_until_released(comm);
      }
      return;
    }
    // Mid-batch liveness: a long batch sends no results until exhausted, so
    // beacon between jobs at the heartbeat cadence.
    if (beacon && since_beacon.seconds() >= opts.supervisor.heartbeat_seconds) {
      comm.send(0, kTagHeartbeat, std::vector<std::byte>{});
      since_beacon.reset();
    }
    mp::JobFrame frame = std::move(mine.front());
    mine.pop_front();
    util::WallTimer job_timer;
    TrackedPath tp;
    tp.index = frame.id;
    tp.worker = comm.rank();
    tp.result = source.execute(frame.payload, ws, make_exec_context(comm, frame, cancelled_ids));
    tp.seconds = job_timer.seconds();
    tracking_seconds += tp.seconds;
    cancelled_ids.erase(frame.id);
    pending.push_back(std::move(tp));
    ++completed;
    if (mine.empty()) {
      // Batch exhausted: one message carries every result plus the
      // implicit request for the next batch.
      inject_latency(opts.injected_latency);
      comm.send(0, kTagBatchDone, pack_tracked_path_batch(pending));
      pending.clear();
    }
  }
  if (aborted) {
    // Flush completed-but-unreported results; unstarted queued jobs are
    // dropped (the resumed session re-tracks them).
    inject_latency(opts.injected_latency);
    comm.send(0, kTagAbortFlush, pack_tracked_path_batch(pending));
    pending.clear();
  }
  mp::Packer p;
  p.write(tracking_seconds);
  comm.send(0, kTagBusy, p);
}

// ---------------------------------------------------------------------------
// Static sessions: pre-assigned shares, every rank (including 0) tracks.
// ---------------------------------------------------------------------------

SessionStats run_static_session(JobSource& source, ResultSink& sink, int ranks,
                                const SessionOptions& opts) {
  SessionStats stats;
  stats.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  // Pre-assignment happens on the calling thread before any rank exists:
  // every rank then derives its share from the same snapshot, exactly as
  // each MPI process would from the replicated workload.
  std::vector<JobId> jobs;
  while (source.ready() > 0) jobs.push_back(source.pop());
  const std::size_t total = jobs.size();
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    const auto p = static_cast<std::size_t>(comm.size());
    const auto r = static_cast<std::size_t>(comm.rank());

    // Positions in the snapshot assigned to this rank.
    std::vector<std::size_t> mine;
    if (opts.assignment == StaticAssignment::kCyclic) {
      for (std::size_t i = r; i < total; i += p) mine.push_back(i);
    } else {
      const std::size_t base = total / p;
      const std::size_t extra = total % p;
      const std::size_t begin = r * base + std::min(r, extra);
      const std::size_t count = base + (r < extra ? 1 : 0);
      for (std::size_t i = begin; i < begin + count; ++i) mine.push_back(i);
    }

    double tracking_seconds = 0.0;
    homotopy::TrackerWorkspace ws = source.make_workspace();
    for (const std::size_t pos : mine) {
      const JobId id = jobs[pos];
      util::WallTimer job_timer;
      TrackedPath tp;
      tp.index = id;
      tp.worker = comm.rank();
      tp.result = source.execute(source.job_payload(id), ws);
      tp.seconds = job_timer.seconds();
      tracking_seconds += tp.seconds;
      inject_latency(opts.injected_latency);
      comm.send(0, kTagResult, pack_tracked_path(tp));
    }
    mp::Packer p_busy;
    p_busy.write(tracking_seconds);
    comm.send(0, kTagBusy, p_busy);

    if (comm.rank() == 0) {
      std::size_t results = 0, busy_reports = 0;
      while (results < total || busy_reports < p) {
        const mp::Message m = comm.recv();
        if (m.tag == kTagResult) {
          TrackedPath tp = unpack_tracked_path(m.payload);
          if (source.consume(tp)) {
            sink.accept(tp);
            ++stats.accepted;
          }
          ++results;
        } else if (m.tag == kTagBusy) {
          mp::Unpacker u(m.payload);
          stats.rank_busy_seconds[static_cast<std::size_t>(m.source)] = u.read<double>();
          ++busy_reports;
        }
      }
    }
  });

  stats.wall_seconds = wall.seconds();
  return stats;
}

// ---------------------------------------------------------------------------
// Fault-plan assembly + validation.
// ---------------------------------------------------------------------------

/// The single fault source: the session's declarative plan, with the legacy
/// cooperative kill switch folded in as one announced death.
mp::FaultPlan effective_fault_plan(const SessionOptions& opts) {
  mp::FaultPlan plan = opts.fault_plan;
  if (opts.kill_slave_after_jobs.has_value()) {
    plan.kill_announced(opts.kill_slave_rank, *opts.kill_slave_after_jobs);
  }
  return plan;
}

void validate_supervisor(const SupervisorOptions& so, const std::string& who) {
  if (!so.enabled) return;
  if (so.heartbeat_seconds <= 0.0) {
    throw std::invalid_argument(who + ": heartbeat_seconds must be positive");
  }
  if (so.miss_budget == 0) throw std::invalid_argument(who + ": miss_budget must be positive");
  if (so.death_multiplier < 1.0) {
    throw std::invalid_argument(who + ": death_multiplier must be at least 1");
  }
  if (so.ewma_alpha <= 0.0 || so.ewma_alpha > 1.0) {
    throw std::invalid_argument(who + ": ewma_alpha must be in (0, 1]");
  }
  if (so.max_attempts == 0) throw std::invalid_argument(who + ": max_attempts must be positive");
}

void validate_fault_plan(const mp::FaultPlan& plan, int ranks, const SessionOptions& opts,
                         const std::string& who) {
  std::set<int> terminal_ranks;
  for (const auto& a : plan.actions()) {
    if (a.rank == mp::kAnyFaultRank) {
      if (!a.on_job.has_value()) {
        throw std::invalid_argument(who + ": an any-rank fault needs an on_job trigger");
      }
    } else if (a.rank <= 0 || a.rank >= ranks) {
      throw std::invalid_argument(who + ": a fault plan can only target slave ranks "
                                        "(1 <= rank < ranks)");
    }
    if (mp::fault_is_uncooperative(a.kind) && !opts.supervisor.enabled) {
      throw std::invalid_argument(who + ": uncooperative faults (silent death, hang) need "
                                        "supervision enabled -- nobody else would notice");
    }
    if (mp::fault_is_terminal(a.kind) && a.rank != mp::kAnyFaultRank) {
      terminal_ranks.insert(a.rank);
    }
  }
  if (!terminal_ranks.empty() && static_cast<int>(terminal_ranks.size()) >= ranks - 1) {
    throw std::invalid_argument(who + ": the fault plan must leave at least one slave alive");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(JobSource& source, ResultSink& sink, SessionOptions opts)
    : source_(source), sink_(sink), opts_(std::move(opts)) {}

SessionStats Session::run(int ranks) {
  const std::string who(opts_.who);
  if (opts_.reliability.enabled) {
    throw std::invalid_argument(who + ": the reliability layer is serve() only -- "
                                      "budgets attach at the stream's admission gate");
  }
  if (opts_.policy == Policy::kStatic) {
    if (ranks <= 0) throw std::invalid_argument(who + ": need at least one rank");
    if (!source_.fixed_total().has_value()) {
      throw std::invalid_argument(who + ": static pre-assignment needs a fixed job pool");
    }
    if (opts_.kill_slave_after_jobs.has_value() || !opts_.fault_plan.empty()) {
      throw std::invalid_argument(who + ": the static policy has no master to re-queue "
                                        "a dead slave's jobs");
    }
    if (opts_.supervisor.enabled) {
      throw std::invalid_argument(who + ": the static policy has no master to supervise");
    }
    if (opts_.stop_after_results.has_value()) {
      throw std::invalid_argument(who + ": the static policy cannot stop early");
    }
    SessionStats stats = run_static_session(source_, sink_, ranks, opts_);
    sink_.finish();
    return stats;
  }

  if (ranks < 2) throw std::invalid_argument(who + ": need a master and at least one slave");
  if (opts_.policy == Policy::kBatchSteal && opts_.factor <= 0.0) {
    throw std::invalid_argument(who + ": factor must be positive");
  }
  validate_kill_switch(opts_.kill_slave_rank, opts_.kill_slave_after_jobs.has_value(), ranks,
                       opts_.who);
  validate_supervisor(opts_.supervisor, who);
  const mp::FaultPlan plan = effective_fault_plan(opts_);
  validate_fault_plan(plan, ranks, opts_, who);
  mp::FaultInjector injector(plan, ranks);
  mp::FaultInjector* fault = plan.empty() ? nullptr : &injector;

  SessionStats stats;
  stats.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  util::WallTimer wall;

  mp::World::run(
      ranks,
      [&](mp::Comm& comm) {
        if (comm.rank() == 0) {
          MasterContext ctx(comm, source_, sink_, opts_, stats, ranks);
          if (opts_.policy == Policy::kFCFS) {
            FcfsPolicy policy;
            run_master(ctx, policy);
          } else {
            BatchStealPolicy policy(ranks);
            run_master(ctx, policy);
          }
        } else if (opts_.policy == Policy::kFCFS) {
          run_fcfs_slave(comm, source_, opts_, fault);
        } else {
          run_batch_slave(comm, source_, opts_, fault);
        }
      },
      fault);

  stats.wall_seconds = wall.seconds();
  sink_.finish();
  return stats;
}

SessionStats Session::serve(int ranks) {
  const std::string who(opts_.who);
  auto* stream = dynamic_cast<StreamJobSource*>(&source_);
  if (stream == nullptr) {
    throw std::invalid_argument(who + ": serve() needs a StreamJobSource "
                                      "(wrap the job source in one, with an arrival trace)");
  }
  if (opts_.policy == Policy::kStatic) {
    throw std::invalid_argument(who + ": the static policy cannot serve a stream "
                                      "(jobs that have not arrived cannot be pre-assigned)");
  }
  if (ranks < 2) throw std::invalid_argument(who + ": need a master and at least one slave");
  if (opts_.policy == Policy::kBatchSteal && opts_.factor <= 0.0) {
    throw std::invalid_argument(who + ": factor must be positive");
  }
  validate_kill_switch(opts_.kill_slave_rank, opts_.kill_slave_after_jobs.has_value(), ranks,
                       opts_.who);
  validate_supervisor(opts_.supervisor, who);
  validate_reliability(opts_.reliability, who);
  const mp::FaultPlan plan = effective_fault_plan(opts_);
  validate_fault_plan(plan, ranks, opts_, who);
  mp::FaultInjector injector(plan, ranks);
  mp::FaultInjector* fault = plan.empty() ? nullptr : &injector;

  SessionStats stats;
  stats.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);

  // Reliability layer (DESIGN.md section 13): deadlines stamp through the
  // stream's admission hook, the brownout controller rides every depth
  // change, and the master context carries pointers to both.
  std::optional<ReliabilityState> rel;
  std::optional<OverloadController> controller;
  if (opts_.reliability.enabled) {
    rel.emplace(opts_.reliability);
    stream->set_admit_hook([&rel](JobId id, double now) { rel->on_admit(id, now); });
    if (opts_.reliability.overload.enabled) {
      controller.emplace(opts_.reliability.overload);
      stream->set_overload(&*controller);
    }
  }

  util::WallTimer wall;

  mp::World::run(
      ranks,
      [&](mp::Comm& comm) {
        if (comm.rank() == 0) {
          MasterContext ctx(comm, source_, sink_, opts_, stats, ranks);
          ctx.stream = stream;
          ctx.rel = rel.has_value() ? &*rel : nullptr;
          ctx.overload = controller.has_value() ? &*controller : nullptr;
          if (opts_.policy == Policy::kFCFS) {
            FcfsPolicy policy;
            run_serve_master(ctx, policy, *stream);
          } else {
            BatchStealPolicy policy(ranks);
            run_serve_master(ctx, policy, *stream);
          }
        } else if (opts_.policy == Policy::kFCFS) {
          run_fcfs_slave(comm, source_, opts_, fault);
        } else {
          run_batch_slave(comm, source_, opts_, fault);
        }
      },
      fault);

  stats.wall_seconds = wall.seconds();
  stats.service = stream->take_service();
  if (controller.has_value()) {
    stats.reliability.brownout_transitions = controller->transitions().size();
    stats.reliability.max_brownout_level = controller->max_level_reached();
    stats.reliability.brownout_shed = stream->brownout_shed();
  }
  // Detach the hooks: the state above dies with this frame, the stream may
  // outlive it.
  stream->set_admit_hook({});
  stream->set_overload(nullptr);
  sink_.finish();
  return stats;
}

ParallelRunReport run_paths(const PathWorkload& workload, int ranks,
                            const SessionOptions& opts) {
  VectorJobSource source(workload);
  InMemoryReportSink sink;
  Session session(source, sink, opts);
  const SessionStats stats = session.run(ranks);
  return sink.report(stats);
}

}  // namespace pph::sched
