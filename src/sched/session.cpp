#include "sched/session.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "sched/stream_source.hpp"
#include "util/timer.hpp"

namespace pph::sched {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFCFS: return "fcfs";
    case Policy::kStatic: return "static";
    case Policy::kBatchSteal: return "batch-steal";
  }
  return "?";
}

ParallelRunReport InMemoryReportSink::report(const SessionStats& stats) {
  ParallelRunReport r;
  r.paths = std::move(paths_);
  paths_.clear();
  r.wall_seconds = stats.wall_seconds;
  r.rank_busy_seconds = stats.rank_busy_seconds;
  r.dispatches = stats.dispatches;
  r.steals = stats.steals;
  r.tally();
  return r;
}

// ---------------------------------------------------------------------------
// VectorJobSource
// ---------------------------------------------------------------------------

VectorJobSource::VectorJobSource(const PathWorkload& workload) : workload_(&workload) {
  for (std::size_t i = 0; i < workload.size(); ++i) ready_.push_back(i);
}

std::size_t VectorJobSource::skip_completed(const std::unordered_set<JobId>& done) {
  const std::size_t before = ready_.size();
  std::erase_if(ready_, [&](JobId id) { return done.count(id) != 0; });
  return before - ready_.size();
}

JobId VectorJobSource::pop() {
  const JobId id = ready_.front();
  ready_.pop_front();
  return id;
}

std::vector<std::byte> VectorJobSource::job_payload(JobId id) const {
  mp::Packer p;
  p.write(id);
  return p.take();
}

homotopy::TrackerWorkspace VectorJobSource::make_workspace() const {
  return homotopy::TrackerWorkspace(*workload_->homotopy);
}

PathResult VectorJobSource::execute(const std::vector<std::byte>& payload,
                                    homotopy::TrackerWorkspace& ws) const {
  mp::Unpacker u(payload);
  const auto index = static_cast<std::size_t>(u.read<std::uint64_t>());
  return homotopy::track_path(*workload_->homotopy, (*workload_->starts)[index],
                              workload_->tracker, ws);
}

namespace {

// ---------------------------------------------------------------------------
// Shared master loop.  One ownership map, one duplicate-suppression set, one
// death-requeue and one checkpoint/abort implementation; policies only decide
// how jobs reach slaves.
// ---------------------------------------------------------------------------

struct MasterContext {
  mp::Comm& comm;
  JobSource& source;
  ResultSink& sink;
  const SessionOptions& opts;
  SessionStats& stats;
  const int ranks;

  std::unordered_map<JobId, int> owner;   // in-flight job -> owning slave
  std::vector<std::size_t> owned_count;   // per-rank in-flight job count
  std::vector<bool> dead;
  std::vector<bool> busy_reported;        // kTagBusy already folded into stats
  bool aborting = false;

  explicit MasterContext(mp::Comm& c, JobSource& src, ResultSink& snk,
                         const SessionOptions& o, SessionStats& st, int r)
      : comm(c), source(src), sink(snk), opts(o), stats(st), ranks(r),
        owned_count(static_cast<std::size_t>(r), 0),
        dead(static_cast<std::size_t>(r), false),
        busy_reported(static_cast<std::size_t>(r), false) {}

  std::size_t alive_slaves() const {
    std::size_t n = 0;
    for (int s = 1; s < ranks; ++s) {
      if (!dead[static_cast<std::size_t>(s)]) ++n;
    }
    return n;
  }

  bool work_remains() const { return !owner.empty() || source.ready() > 0; }

  /// A result landed on the master: retire it from the ownership map,
  /// let the source consume it (possibly creating new jobs), and forward
  /// counted results to the sink.  Results for jobs no longer in flight
  /// (duplicates after a death re-queue) are dropped.
  void accept_result(const TrackedPath& tp) {
    const auto it = owner.find(tp.index);
    if (it == owner.end()) return;
    --owned_count[static_cast<std::size_t>(it->second)];
    owner.erase(it);
    if (source.consume(tp)) {
      sink.accept(tp);
      ++stats.accepted;
    }
  }

  /// Death re-queue shared by every policy: everything the dead slave still
  /// owned goes back to the front of the ready queue.
  void requeue_dead(int s) {
    const auto su = static_cast<std::size_t>(s);
    dead[su] = true;
    owned_count[su] = 0;
    std::vector<JobId> held;
    for (const auto& [id, own] : owner) {
      if (own == s) held.push_back(id);
    }
    // Descending + push_front puts the re-queued jobs at the front in
    // ascending id order, as the legacy schedulers did.
    std::sort(held.begin(), held.end(), std::greater<>());
    for (const JobId id : held) {
      owner.erase(id);
      source.requeue(id);
    }
  }

  bool should_abort() const {
    return opts.stop_after_results.has_value() && stats.accepted >= *opts.stop_after_results;
  }
};

class MasterPolicy {
 public:
  virtual ~MasterPolicy() = default;
  /// Initial hand-outs before the receive loop starts.
  virtual void seed(MasterContext& ctx) = 0;
  /// Slave `s` delivered its results (or a steal refusal) and wants work.
  virtual void refill(MasterContext& ctx, int s) = 0;
  /// The ready queue may have grown (tree expansion or death re-queue):
  /// hand work to parked slaves.
  virtual void wake_parked(MasterContext& ctx) = 0;
  /// Policy-specific message (steal bookkeeping); true when handled.
  virtual bool handle(MasterContext&, const mp::Message&) { return false; }
  virtual void on_death(MasterContext&, int) {}
};

// ---- FCFS: per-job dispatch with an idle queue (the paper's dynamic
// protocol, plus the Pieri scheduler's parking of jobless slaves) ----------

class FcfsPolicy final : public MasterPolicy {
 public:
  void seed(MasterContext& ctx) override {
    for (int s = 1; s < ctx.ranks; ++s) {
      bool got_one = false;
      for (std::size_t k = 0; k < ctx.opts.initial_jobs_per_slave; ++k) {
        if (!dispatch_one(ctx, s)) break;
        got_one = true;
      }
      // A slave seeded with nothing parks until results create jobs (tree
      // sources) or a death re-queue frees some.
      if (!got_one) idle_.push_back(s);
    }
  }

  void refill(MasterContext& ctx, int s) override {
    if (ctx.dead[static_cast<std::size_t>(s)] || ctx.aborting) return;
    idle_.push_back(s);
    wake_parked(ctx);
  }

  void wake_parked(MasterContext& ctx) override {
    if (ctx.aborting) return;
    while (!idle_.empty() && ctx.source.ready() > 0) {
      const int s = idle_.front();
      idle_.pop_front();
      if (ctx.dead[static_cast<std::size_t>(s)]) continue;
      dispatch_one(ctx, s);
    }
  }

 private:
  bool dispatch_one(MasterContext& ctx, int s) {
    if (ctx.source.ready() == 0) return false;
    const JobId id = ctx.source.pop();
    mp::JobFrame frame{id, ctx.source.job_payload(id)};
    inject_latency(ctx.opts.injected_latency);
    ctx.comm.send(s, kTagJob, mp::pack_job_frame(frame));
    ctx.owner.emplace(id, s);
    ++ctx.owned_count[static_cast<std::size_t>(s)];
    ++ctx.stats.dispatches;
    return true;
  }

  std::deque<int> idle_;  // the paper's queue of parked slaves
};

// ---- BatchSteal: guided batches + master-brokered stealing ----------------

class BatchStealPolicy final : public MasterPolicy {
 public:
  explicit BatchStealPolicy(int ranks)
      : parked_(static_cast<std::size_t>(ranks), false),
        refused_(static_cast<std::size_t>(ranks)) {}

  void seed(MasterContext& ctx) override {
    for (int s = 1; s < ctx.ranks; ++s) refill(ctx, s);
  }

  void refill(MasterContext& ctx, int s) override {
    const auto su = static_cast<std::size_t>(s);
    if (ctx.dead[su] || ctx.aborting) return;
    if (dispatch_batch(ctx, s)) return;
    // Pool drained: broker a steal from the most loaded slave.  A load of
    // one is not worth moving (it is the victim's in-flight job).
    int victim = -1;
    std::size_t best = 1;
    for (int v = 1; v < ctx.ranks; ++v) {
      const auto vu = static_cast<std::size_t>(v);
      if (v == s || ctx.dead[vu] || refused_[su].count(v) != 0) continue;
      if (ctx.owned_count[vu] > best) {
        best = ctx.owned_count[vu];
        victim = v;
      }
    }
    if (victim >= 0) {
      inject_latency(ctx.opts.injected_latency);
      ctx.comm.send(victim, kTagStealOrder, mp::pack_steal_request({s}));
      awaiting_[victim].push_back(s);
    } else {
      parked_[su] = true;  // released by new jobs or the stop broadcast
    }
  }

  void wake_parked(MasterContext& ctx) override {
    if (ctx.aborting) return;
    for (int s = 1; s < ctx.ranks && ctx.source.ready() > 0; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (!ctx.dead[su] && parked_[su]) refill(ctx, s);
    }
  }

  bool handle(MasterContext& ctx, const mp::Message& m) override {
    if (m.tag != kTagStealNotify) return false;
    const auto src = static_cast<std::size_t>(m.source);
    mp::Unpacker u(m.payload);
    const int victim = u.read<int>();
    const auto ids = u.read_vector<std::uint64_t>();
    auto& waiting = awaiting_[victim];
    std::erase(waiting, m.source);
    if (ids.empty()) {
      refused_[src].insert(victim);
      refill(ctx, m.source);
    } else {
      for (const auto id : ids) {
        const auto it = ctx.owner.find(id);
        if (it == ctx.owner.end()) continue;  // raced with completion/death
        --ctx.owned_count[static_cast<std::size_t>(it->second)];
        it->second = m.source;
        ++ctx.owned_count[src];
      }
      ++ctx.stats.steals;
      refused_[src].clear();
    }
    return true;
  }

  void on_death(MasterContext& ctx, int s) override {
    parked_[static_cast<std::size_t>(s)] = false;
    // Unblock thieves that were waiting on the dead victim.
    std::vector<int> thieves;
    thieves.swap(awaiting_[s]);
    for (const int t : thieves) {
      if (!ctx.dead[static_cast<std::size_t>(t)]) refill(ctx, t);
    }
  }

 private:
  bool dispatch_batch(MasterContext& ctx, int s) {
    if (ctx.source.ready() == 0) return false;
    const auto su = static_cast<std::size_t>(s);
    const std::size_t chunk = guided_chunk_size(ctx.source.ready(), ctx.alive_slaves(),
                                                ctx.opts.factor, ctx.opts.min_batch);
    std::vector<mp::JobFrame> frames;
    frames.reserve(chunk);
    while (frames.size() < chunk && ctx.source.ready() > 0) {
      const JobId id = ctx.source.pop();
      frames.push_back({id, ctx.source.job_payload(id)});
      ctx.owner.emplace(id, s);
      ++ctx.owned_count[su];
    }
    inject_latency(ctx.opts.injected_latency);
    ctx.comm.send(s, kTagBatch, mp::pack_job_frame_batch(frames));
    ++ctx.stats.dispatches;
    refused_[su].clear();
    parked_[su] = false;
    return true;
  }

  std::vector<bool> parked_;
  std::vector<std::set<int>> refused_;   // victims that refused since last refill
  std::map<int, std::vector<int>> awaiting_;  // thieves awaiting a reply, per victim
};

// ---- the loop itself ------------------------------------------------------

/// Checkpoint shutdown (DESIGN.md section 7, "Resume protocol"): broadcast
/// kTagAbort, then drain until every alive slave has flushed.  In-flight and
/// flushed results are real completed work and still reach the sink (so a
/// resumed session re-tracks as little as possible); unstarted jobs are
/// simply dropped -- the store, not master state, is the source of truth on
/// resume.
void abort_session(MasterContext& ctx) {
  ctx.aborting = true;
  ctx.stats.stopped_early = true;
  for (int s = 1; s < ctx.ranks; ++s) {
    if (!ctx.dead[static_cast<std::size_t>(s)]) {
      inject_latency(ctx.opts.injected_latency);
      ctx.comm.send(s, kTagAbort, std::vector<std::byte>{});
    }
  }
  std::size_t pending = ctx.alive_slaves();
  while (pending > 0) {
    const mp::Message m = ctx.comm.recv();
    if (m.tag == kTagResult) {
      ctx.accept_result(unpack_tracked_path(m.payload));
    } else if (m.tag == kTagBatchDone || m.tag == kTagAbortFlush) {
      for (const auto& tp : unpack_tracked_path_batch(m.payload)) ctx.accept_result(tp);
      if (m.tag == kTagAbortFlush) --pending;
    } else if (m.tag == kTagDead) {
      ctx.requeue_dead(m.source);
      --pending;
    } else if (m.tag == kTagBusy) {
      // A fast slave's busy report can overtake the drain; fold it in here
      // so the final collection does not wait for a consumed message.
      mp::Unpacker u(m.payload);
      ctx.stats.rank_busy_seconds[static_cast<std::size_t>(m.source)] = u.read<double>();
      ctx.busy_reported[static_cast<std::size_t>(m.source)] = true;
    }
    // Steal notifies and the like are bookkeeping for work that will never
    // be dispatched again; ignore them.
  }
}

/// One master-side message, dispatched the same way in every loop shape
/// (batch run_master, streamed run_serve_master, tests via either).
void handle_master_message(MasterContext& ctx, MasterPolicy& policy, const mp::Message& m) {
  if (m.tag == kTagResult) {
    ctx.accept_result(unpack_tracked_path(m.payload));
    policy.refill(ctx, m.source);
    policy.wake_parked(ctx);  // tree growth may feed more than one slave
  } else if (m.tag == kTagBatchDone) {
    for (const auto& tp : unpack_tracked_path_batch(m.payload)) ctx.accept_result(tp);
    policy.refill(ctx, m.source);
    policy.wake_parked(ctx);
  } else if (m.tag == kTagDead) {
    ctx.requeue_dead(m.source);
    policy.on_death(ctx, m.source);
    policy.wake_parked(ctx);
  } else {
    policy.handle(ctx, m);
  }
}

/// Shared master epilogue: release the slaves (unless an abort already
/// did), then collect busy-time reports (filtered receives skip stray
/// in-flight messages; dead slaves never report, and the abort drain may
/// have folded some reports in already).
void finish_master(MasterContext& ctx) {
  if (!ctx.aborting) {
    for (int s = 1; s < ctx.ranks; ++s) {
      if (!ctx.dead[static_cast<std::size_t>(s)]) {
        ctx.comm.send(s, kTagStop, std::vector<std::byte>{});
      }
    }
  }
  for (int s = 1; s < ctx.ranks; ++s) {
    const auto su = static_cast<std::size_t>(s);
    if (ctx.dead[su] || ctx.busy_reported[su]) continue;
    const mp::Message m = ctx.comm.recv(s, kTagBusy);
    mp::Unpacker u(m.payload);
    ctx.stats.rank_busy_seconds[su] = u.read<double>();
  }
}

void run_master(MasterContext& ctx, MasterPolicy& policy) {
  policy.seed(ctx);
  while (ctx.work_remains()) {
    if (ctx.should_abort()) {
      abort_session(ctx);
      break;
    }
    handle_master_message(ctx, policy, ctx.comm.recv());
  }
  finish_master(ctx);
}

/// The solve-service master loop (DESIGN.md section 10): admit arrivals as
/// they come due, dispatch under the policy, sleep until the next timed
/// event (arrival or deadline) or until a message lands, and on shutdown
/// drain everything admitted or in flight before releasing the slaves.
void run_serve_master(MasterContext& ctx, MasterPolicy& policy, StreamJobSource& stream) {
  stream.begin();
  util::WallTimer wall;
  stream.poll();      // a trace can start at t=0 (burst workloads)
  policy.seed(ctx);   // slaves with nothing to do park until arrivals come
  for (;;) {
    const std::size_t admitted = stream.poll();
    if (admitted > 0) policy.wake_parked(ctx);
    bool handled = false;
    while (auto m = ctx.comm.try_recv()) {
      handle_master_message(ctx, policy, *m);
      handled = true;
      if (ctx.should_abort()) break;
    }
    if (ctx.should_abort()) {
      abort_session(ctx);
      break;
    }
    const auto& deadline = ctx.opts.serve_deadline_seconds;
    if (deadline.has_value() && wall.seconds() >= *deadline) stream.close();
    if (stream.closed() && !ctx.work_remains()) break;
    if (handled || admitted > 0) continue;  // state changed: re-evaluate first
    // Nothing due and nothing queued: sleep until the next timed event or
    // the next message, whichever comes first.
    double wait = stream.seconds_until_next_arrival();
    if (deadline.has_value()) wait = std::min(wait, std::max(*deadline - wall.seconds(), 0.0));
    if (std::isinf(wait)) {
      // No timed event left: only in-flight work remains, so the next
      // state change is by message.
      handle_master_message(ctx, policy, ctx.comm.recv());
    } else if (wait > 0.0) {
      if (auto m = ctx.comm.recv_for(wait)) handle_master_message(ctx, policy, *m);
    }
    // wait == 0: an arrival is due; the poll at the top admits it.
  }
  finish_master(ctx);
}

// ---------------------------------------------------------------------------
// Slave loops.
// ---------------------------------------------------------------------------

void run_fcfs_slave(mp::Comm& comm, const JobSource& source, const SessionOptions& opts) {
  double tracking_seconds = 0.0;
  std::size_t completed = 0;
  homotopy::TrackerWorkspace ws = source.make_workspace();
  const bool killable =
      comm.rank() == opts.kill_slave_rank && opts.kill_slave_after_jobs.has_value();
  bool aborted = false;
  for (;;) {
    const mp::Message m = comm.recv(0);
    if (m.tag == kTagStop) break;
    if (m.tag == kTagAbort) {
      aborted = true;
      break;
    }
    const mp::JobFrame frame = mp::unpack_job_frame(m.payload);
    if (killable && completed >= *opts.kill_slave_after_jobs) {
      inject_latency(opts.injected_latency);
      comm.send(0, kTagDead, std::vector<std::byte>{});
      return;  // dies without reporting busy time
    }
    util::WallTimer job_timer;
    TrackedPath tp;
    tp.index = frame.id;
    tp.worker = comm.rank();
    tp.result = source.execute(frame.payload, ws);
    tp.seconds = job_timer.seconds();
    tracking_seconds += tp.seconds;
    inject_latency(opts.injected_latency);
    comm.send(0, kTagResult, pack_tracked_path(tp));
    ++completed;
  }
  if (aborted) {
    // FCFS slaves hold no unreported results; the flush is the ack the
    // master counts alive slaves by.
    inject_latency(opts.injected_latency);
    comm.send(0, kTagAbortFlush, pack_tracked_path_batch({}));
  }
  mp::Packer p;
  p.write(tracking_seconds);
  comm.send(0, kTagBusy, p);
}

void run_batch_slave(mp::Comm& comm, const JobSource& source, const SessionOptions& opts) {
  std::deque<mp::JobFrame> mine;
  std::vector<TrackedPath> pending;
  double tracking_seconds = 0.0;
  std::size_t completed = 0;
  homotopy::TrackerWorkspace ws = source.make_workspace();
  const bool killable =
      comm.rank() == opts.kill_slave_rank && opts.kill_slave_after_jobs.has_value();
  bool stopped = false;
  bool aborted = false;

  auto handle = [&](const mp::Message& m) {
    if (m.tag == kTagBatch) {
      for (auto& frame : mp::unpack_job_frame_batch(m.payload)) {
        mine.push_back(std::move(frame));
      }
    } else if (m.tag == kTagStealOrder) {
      // Donate the back half of the local queue straight to the thief
      // (an empty reply is a refusal; the thief reports it either way).
      const auto req = mp::unpack_steal_request(m.payload);
      std::vector<mp::JobFrame> donated;
      for (std::size_t k = mine.size() / 2; k > 0; --k) {
        donated.push_back(std::move(mine.back()));
        mine.pop_back();
      }
      inject_latency(opts.injected_latency);
      comm.send(req.thief, kTagStealReply, mp::pack_job_frame_batch(donated));
    } else if (m.tag == kTagStealReply) {
      auto frames = mp::unpack_job_frame_batch(m.payload);
      std::vector<std::uint64_t> ids;
      ids.reserve(frames.size());
      for (const auto& frame : frames) ids.push_back(frame.id);
      for (auto& frame : frames) mine.push_back(std::move(frame));
      // One-way ownership notification so the master's map stays exact.
      mp::Packer p;
      p.write(m.source);
      p.write_vector(ids);
      inject_latency(opts.injected_latency);
      comm.isend(0, kTagStealNotify, p.take());
    } else if (m.tag == kTagStop) {
      stopped = true;
    } else if (m.tag == kTagAbort) {
      stopped = true;
      aborted = true;
    }
  };

  while (!stopped) {
    if (mine.empty()) {
      handle(comm.recv());
      continue;
    }
    // Drain control traffic (steal orders, late batches) between jobs.
    while (auto m = comm.try_recv()) {
      handle(*m);
      if (stopped) break;
    }
    if (stopped || mine.empty()) continue;
    if (killable && completed >= *opts.kill_slave_after_jobs) {
      // Serve queued steal orders with refusals so no thief hangs on a
      // reply that will never come, then die silently (no busy report).
      while (auto m = comm.try_recv(mp::kAnySource, kTagStealOrder)) {
        const auto req = mp::unpack_steal_request(m->payload);
        inject_latency(opts.injected_latency);
        comm.send(req.thief, kTagStealReply, mp::pack_job_frame_batch({}));
      }
      inject_latency(opts.injected_latency);
      comm.send(0, kTagDead, std::vector<std::byte>{});
      return;
    }
    mp::JobFrame frame = std::move(mine.front());
    mine.pop_front();
    util::WallTimer job_timer;
    TrackedPath tp;
    tp.index = frame.id;
    tp.worker = comm.rank();
    tp.result = source.execute(frame.payload, ws);
    tp.seconds = job_timer.seconds();
    tracking_seconds += tp.seconds;
    pending.push_back(std::move(tp));
    ++completed;
    if (mine.empty()) {
      // Batch exhausted: one message carries every result plus the
      // implicit request for the next batch.
      inject_latency(opts.injected_latency);
      comm.send(0, kTagBatchDone, pack_tracked_path_batch(pending));
      pending.clear();
    }
  }
  if (aborted) {
    // Flush completed-but-unreported results; unstarted queued jobs are
    // dropped (the resumed session re-tracks them).
    inject_latency(opts.injected_latency);
    comm.send(0, kTagAbortFlush, pack_tracked_path_batch(pending));
    pending.clear();
  }
  mp::Packer p;
  p.write(tracking_seconds);
  comm.send(0, kTagBusy, p);
}

// ---------------------------------------------------------------------------
// Static sessions: pre-assigned shares, every rank (including 0) tracks.
// ---------------------------------------------------------------------------

SessionStats run_static_session(JobSource& source, ResultSink& sink, int ranks,
                                const SessionOptions& opts) {
  SessionStats stats;
  stats.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  // Pre-assignment happens on the calling thread before any rank exists:
  // every rank then derives its share from the same snapshot, exactly as
  // each MPI process would from the replicated workload.
  std::vector<JobId> jobs;
  while (source.ready() > 0) jobs.push_back(source.pop());
  const std::size_t total = jobs.size();
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    const auto p = static_cast<std::size_t>(comm.size());
    const auto r = static_cast<std::size_t>(comm.rank());

    // Positions in the snapshot assigned to this rank.
    std::vector<std::size_t> mine;
    if (opts.assignment == StaticAssignment::kCyclic) {
      for (std::size_t i = r; i < total; i += p) mine.push_back(i);
    } else {
      const std::size_t base = total / p;
      const std::size_t extra = total % p;
      const std::size_t begin = r * base + std::min(r, extra);
      const std::size_t count = base + (r < extra ? 1 : 0);
      for (std::size_t i = begin; i < begin + count; ++i) mine.push_back(i);
    }

    double tracking_seconds = 0.0;
    homotopy::TrackerWorkspace ws = source.make_workspace();
    for (const std::size_t pos : mine) {
      const JobId id = jobs[pos];
      util::WallTimer job_timer;
      TrackedPath tp;
      tp.index = id;
      tp.worker = comm.rank();
      tp.result = source.execute(source.job_payload(id), ws);
      tp.seconds = job_timer.seconds();
      tracking_seconds += tp.seconds;
      inject_latency(opts.injected_latency);
      comm.send(0, kTagResult, pack_tracked_path(tp));
    }
    mp::Packer p_busy;
    p_busy.write(tracking_seconds);
    comm.send(0, kTagBusy, p_busy);

    if (comm.rank() == 0) {
      std::size_t results = 0, busy_reports = 0;
      while (results < total || busy_reports < p) {
        const mp::Message m = comm.recv();
        if (m.tag == kTagResult) {
          const TrackedPath tp = unpack_tracked_path(m.payload);
          if (source.consume(tp)) {
            sink.accept(tp);
            ++stats.accepted;
          }
          ++results;
        } else if (m.tag == kTagBusy) {
          mp::Unpacker u(m.payload);
          stats.rank_busy_seconds[static_cast<std::size_t>(m.source)] = u.read<double>();
          ++busy_reports;
        }
      }
    }
  });

  stats.wall_seconds = wall.seconds();
  return stats;
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(JobSource& source, ResultSink& sink, SessionOptions opts)
    : source_(source), sink_(sink), opts_(std::move(opts)) {}

SessionStats Session::run(int ranks) {
  const std::string who(opts_.who);
  if (opts_.policy == Policy::kStatic) {
    if (ranks <= 0) throw std::invalid_argument(who + ": need at least one rank");
    if (!source_.fixed_total().has_value()) {
      throw std::invalid_argument(who + ": static pre-assignment needs a fixed job pool");
    }
    if (opts_.kill_slave_after_jobs.has_value()) {
      throw std::invalid_argument(who + ": the static policy has no master to re-queue "
                                        "a dead slave's jobs");
    }
    if (opts_.stop_after_results.has_value()) {
      throw std::invalid_argument(who + ": the static policy cannot stop early");
    }
    SessionStats stats = run_static_session(source_, sink_, ranks, opts_);
    sink_.finish();
    return stats;
  }

  if (ranks < 2) throw std::invalid_argument(who + ": need a master and at least one slave");
  if (opts_.policy == Policy::kBatchSteal && opts_.factor <= 0.0) {
    throw std::invalid_argument(who + ": factor must be positive");
  }
  validate_kill_switch(opts_.kill_slave_rank, opts_.kill_slave_after_jobs.has_value(), ranks,
                       opts_.who);

  SessionStats stats;
  stats.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    if (comm.rank() == 0) {
      MasterContext ctx(comm, source_, sink_, opts_, stats, ranks);
      if (opts_.policy == Policy::kFCFS) {
        FcfsPolicy policy;
        run_master(ctx, policy);
      } else {
        BatchStealPolicy policy(ranks);
        run_master(ctx, policy);
      }
    } else if (opts_.policy == Policy::kFCFS) {
      run_fcfs_slave(comm, source_, opts_);
    } else {
      run_batch_slave(comm, source_, opts_);
    }
  });

  stats.wall_seconds = wall.seconds();
  sink_.finish();
  return stats;
}

SessionStats Session::serve(int ranks) {
  const std::string who(opts_.who);
  auto* stream = dynamic_cast<StreamJobSource*>(&source_);
  if (stream == nullptr) {
    throw std::invalid_argument(who + ": serve() needs a StreamJobSource "
                                      "(wrap the job source in one, with an arrival trace)");
  }
  if (opts_.policy == Policy::kStatic) {
    throw std::invalid_argument(who + ": the static policy cannot serve a stream "
                                      "(jobs that have not arrived cannot be pre-assigned)");
  }
  if (ranks < 2) throw std::invalid_argument(who + ": need a master and at least one slave");
  if (opts_.policy == Policy::kBatchSteal && opts_.factor <= 0.0) {
    throw std::invalid_argument(who + ": factor must be positive");
  }
  validate_kill_switch(opts_.kill_slave_rank, opts_.kill_slave_after_jobs.has_value(), ranks,
                       opts_.who);

  SessionStats stats;
  stats.rank_busy_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
  util::WallTimer wall;

  mp::World::run(ranks, [&](mp::Comm& comm) {
    if (comm.rank() == 0) {
      MasterContext ctx(comm, source_, sink_, opts_, stats, ranks);
      if (opts_.policy == Policy::kFCFS) {
        FcfsPolicy policy;
        run_serve_master(ctx, policy, *stream);
      } else {
        BatchStealPolicy policy(ranks);
        run_serve_master(ctx, policy, *stream);
      }
    } else if (opts_.policy == Policy::kFCFS) {
      run_fcfs_slave(comm, source_, opts_);
    } else {
      run_batch_slave(comm, source_, opts_);
    }
  });

  stats.wall_seconds = wall.seconds();
  stats.service = stream->take_service();
  sink_.finish();
  return stats;
}

ParallelRunReport run_paths(const PathWorkload& workload, int ranks,
                            const SessionOptions& opts) {
  VectorJobSource source(workload);
  InMemoryReportSink sink;
  Session session(source, sink, opts);
  const SessionStats stats = session.run(ranks);
  return sink.report(stats);
}

}  // namespace pph::sched
