#pragma once
// Parallel Pieri homotopy (paper section III-D, Fig 6): the master (rank 0)
// expands the virtual Pieri tree -- a queue of path-tracking jobs whose
// start solutions are known -- and distributes jobs to slaves.  Slaves that
// return results with no job available are parked on an idle queue and
// re-activated when results create new jobs (the paper's fix for premature
// termination); after the root instance completes, the master broadcasts a
// stop message.
//
// The tree expansion lives in PieriTreeJobSource, a sched::JobSource
// (DESIGN.md section 7): run_pieri is a thin wrapper composing it with a
// Session, so the tree rides the same dispatch policies as the flat
// path pools -- Policy::kFCFS (the paper's per-job protocol) or
// Policy::kBatchSteal (level batches with master-brokered steals), with
// the shared kill-switch/death-requeue fail injection.  Scheduling never
// changes the numerics: both policies produce the same solution set.
//
// On top of the paper's protocol this implementation adds the same
// instance-level quality control as the sequential solver: all sibling
// edges into one (pattern, level) instance ride one deformation (gamma and
// point-path detours derived deterministically from the pattern).  When an
// instance's edges all report back, the failed, suspect and colliding
// paths are first re-dispatched as targeted same-deformation rescue jobs
// (DESIGN.md section 9); only if the rescue budget runs dry is the whole
// instance re-dispatched with a fresh deformation.  See DESIGN.md
// section 2 for the protocol and the parking rationale.

#include <map>
#include <unordered_map>

#include "schubert/pieri_solver.hpp"
#include "sched/session.hpp"

namespace pph::sched {

struct ParallelPieriOptions {
  schubert::PieriSolverOptions solver;
  /// Dispatch policy: kFCFS (the paper's protocol) or kBatchSteal (level
  /// batches + master-brokered steals).  kStatic is rejected -- tree jobs
  /// are created by results, so no pre-assignment exists.
  Policy policy = Policy::kFCFS;
  /// BatchSteal knobs, as in BatchOptions.
  double factor = 2.0;
  std::size_t min_batch = 1;
  /// Simulated per-message latency (seconds) as in DynamicOptions.
  double injected_latency = 0.0;
  /// Fail-injection hook for tests, as in DynamicOptions: the slave at
  /// kill_slave_rank "dies" after completing this many edges; the master
  /// re-queues the edges it held (validated by validate_kill_switch).
  std::optional<std::size_t> kill_slave_after_jobs;
  int kill_slave_rank = -1;
};

struct ParallelPieriReport {
  std::vector<schubert::PieriMap> solutions;
  std::uint64_t expected_count = 0;
  std::uint64_t total_jobs = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint64_t> jobs_per_level;   // measured, one entry per level
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;
  std::size_t verified = 0;
  std::size_t distinct = 0;
  double max_residual = 0.0;
  /// High-water mark of simultaneously active instances on the master: the
  /// memory footprint argument of paper section III-C (tree nodes die fast).
  std::size_t peak_active_instances = 0;
  /// Session traffic: master job/batch hand-outs and brokered steals.
  std::size_t dispatches = 0;
  std::size_t steals = 0;
  /// Rescue provenance (DESIGN.md section 9), mirroring PieriSolveSummary:
  /// targeted same-gamma re-tracks issued, instances that passed quality
  /// control with rescue help, and rescue-target sightings (failed +
  /// suspect + colliding paths).  Rescue re-tracks are NOT part of
  /// total_jobs/jobs_per_level, which keep counting tree edges.
  std::uint64_t rescue_retracks = 0;
  std::uint64_t rescued_instances = 0;
  std::uint64_t suspect_paths = 0;

  bool complete() const {
    return failures == 0 && solutions.size() == expected_count &&
           verified == solutions.size() && distinct == solutions.size();
  }
};

/// JobSource over the master's virtual Pieri tree expansion: consuming a
/// tracked edge's result books it into its (pattern, level) instance and --
/// when the instance completes -- creates the child jobs it feeds, so
/// results create new jobs and idle slaves park until work exists.  Jobs
/// get sequential ids; a retried instance re-enqueues its edges under a
/// fresh attempt, and results of superseded attempts are not counted.
class PieriTreeJobSource final : public JobSource {
 public:
  PieriTreeJobSource(const schubert::PieriInput& input,
                     const schubert::PieriSolverOptions& solver);

  std::size_t ready() const override { return ready_.size(); }
  JobId pop() override;
  void requeue(JobId id) override { ready_.push_front(id); }
  std::vector<std::byte> job_payload(JobId id) const override;
  bool consume(TrackedPath& tp) override;

  /// One workspace per slave, bound to the edge-homotopy FAMILY: the
  /// compiled fast path's caches are keyed on the owning tape, so the same
  /// workspace (predictor/corrector/LU buffers AND the eval scratch) is
  /// reused across every tree edge the slave tracks instead of being
  /// reallocated per edge.
  homotopy::TrackerWorkspace make_workspace() const override;
  PathResult execute(const std::vector<std::byte>& payload,
                     homotopy::TrackerWorkspace& ws) const override;

  /// Fill the tree-side report fields (solutions, QC verdicts, per-level
  /// job counts) after the session ends.
  void assemble(ParallelPieriReport& report) const;

 private:
  /// One enqueued-or-in-flight tree edge (rescue > 0: a targeted re-track
  /// of start_index under the same attempt deformation).
  struct Job {
    std::vector<std::size_t> pivots;
    std::uint32_t attempt = 0;
    std::uint32_t rescue = 0;
    std::uint32_t start_index = 0;
    linalg::CVector start;
  };
  /// Master-side state of one (pattern, level) instance.
  struct Instance {
    std::uint64_t expected = 0;   // chain count == number of incoming edges
    std::uint32_t attempt = 0;
    std::uint32_t rescue_round = 0;           // targeted re-track rounds issued
    std::vector<linalg::CVector> starts;      // retained for retries
    /// Per-start results of the current attempt, indexed like starts; the
    /// rescue quality control needs full diagnostics, not just endpoints.
    std::vector<homotopy::PathResult> results;
    std::uint64_t received = 0;               // first-sweep results received
    std::uint64_t outstanding_rescue = 0;     // rescue re-tracks in flight
    bool used_rescue = false;
  };

  Instance& instance_of(const std::vector<std::size_t>& pivots);
  JobId add_job(std::vector<std::size_t> pivots, std::uint32_t attempt, std::uint32_t rescue,
                std::uint32_t start_index, linalg::CVector start);
  void settle_instance(const std::vector<std::size_t>& pivots, Instance& inst);

  const schubert::PieriInput* input_;
  schubert::PieriSolverOptions solver_;
  schubert::PatternPoset poset_;
  schubert::Pattern root_;
  std::map<std::vector<std::size_t>, Instance> instances_;
  std::unordered_map<JobId, Job> jobs_;   // created and not yet consumed
  std::deque<JobId> ready_;
  JobId next_id_ = 0;
  std::size_t active_instances_ = 0;

  // Report accounting.
  std::uint64_t total_jobs_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t rescue_retracks_ = 0;
  std::uint64_t rescued_instances_ = 0;
  std::uint64_t suspect_paths_ = 0;
  std::vector<std::uint64_t> jobs_per_level_;
  std::size_t peak_active_instances_ = 0;
  std::vector<linalg::CVector> root_solutions_;
};

/// Solve a Pieri problem on `ranks` ranks (rank 0 = master; needs >= 2):
/// the tree facade symmetric with run_paths, composing PieriTreeJobSource
/// with a Session under opts.policy (kFCFS or kBatchSteal).
ParallelPieriReport run_pieri(const schubert::PieriInput& input, int ranks,
                              const ParallelPieriOptions& opts = {});

/// Legacy-shaped entry point; identical to run_pieri.
[[deprecated("compose a sched::Session (or call sched::run_pieri)")]]
ParallelPieriReport run_parallel_pieri(const schubert::PieriInput& input, int ranks,
                                       const ParallelPieriOptions& opts = {});

/// Canonical bitwise key of a solution set: the coordinate vectors sorted
/// lexicographically by (real, imag).  Runs over the same input must
/// produce EQUAL keys whatever the policy, worker count, or failure
/// injection -- the cross-policy identity invariant asserted by both the
/// tests and the ablation bench (the Pieri analogue of
/// identical_path_results).
std::vector<std::vector<linalg::Complex>> canonical_solution_set(
    const std::vector<schubert::PieriMap>& solutions);

/// Deterministic per-instance deformation: gamma and the two point-path
/// detour constants derived from (seed, pattern pivots, attempt).  Master
/// and slaves derive identical values without communication.
struct InstanceDeformation {
  linalg::Complex gamma;
  linalg::Complex detour_s;
  linalg::Complex detour_u;
};
InstanceDeformation instance_deformation(std::uint64_t seed,
                                         const std::vector<std::size_t>& pivots,
                                         std::size_t attempt);

}  // namespace pph::sched
