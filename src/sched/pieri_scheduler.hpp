#pragma once
// Parallel Pieri homotopy (paper section III-D, Fig 6): the master (rank 0)
// expands the virtual Pieri tree -- a queue of path-tracking jobs whose
// start solutions are known -- and distributes jobs to slaves
// first-come-first-served.  Slaves that return results with no job
// available are parked on an idle queue and re-activated when results
// create new jobs (the paper's fix for premature termination); after the
// root instance completes, the master broadcasts a stop message.
//
// On top of the paper's protocol this implementation adds the same
// instance-level quality control as the sequential solver: all sibling
// edges into one (pattern, level) instance ride one deformation (gamma and
// point-path detours derived deterministically from the pattern), and an
// instance whose endpoints fail to converge or collide is re-dispatched
// with a fresh deformation.  See DESIGN.md section 2 for the protocol and
// the parking rationale.

#include "schubert/pieri_solver.hpp"
#include "sched/job_pool.hpp"

namespace pph::sched {

struct ParallelPieriOptions {
  schubert::PieriSolverOptions solver;
  /// Simulated per-message latency (seconds) as in DynamicOptions.
  double injected_latency = 0.0;
};

struct ParallelPieriReport {
  std::vector<schubert::PieriMap> solutions;
  std::uint64_t expected_count = 0;
  std::uint64_t total_jobs = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint64_t> jobs_per_level;   // measured, one entry per level
  double wall_seconds = 0.0;
  std::vector<double> rank_busy_seconds;
  std::size_t verified = 0;
  std::size_t distinct = 0;
  double max_residual = 0.0;
  /// High-water mark of simultaneously active instances on the master: the
  /// memory footprint argument of paper section III-C (tree nodes die fast).
  std::size_t peak_active_instances = 0;

  bool complete() const {
    return failures == 0 && solutions.size() == expected_count &&
           verified == solutions.size() && distinct == solutions.size();
  }
};

/// Solve a Pieri problem on `ranks` ranks (rank 0 = master; needs >= 2).
ParallelPieriReport run_parallel_pieri(const schubert::PieriInput& input, int ranks,
                                       const ParallelPieriOptions& opts = {});

/// Deterministic per-instance deformation: gamma and the two point-path
/// detour constants derived from (seed, pattern pivots, attempt).  Master
/// and slaves derive identical values without communication.
struct InstanceDeformation {
  linalg::Complex gamma;
  linalg::Complex detour_s;
  linalg::Complex detour_u;
};
InstanceDeformation instance_deformation(std::uint64_t seed,
                                         const std::vector<std::size_t>& pivots,
                                         std::size_t attempt);

}  // namespace pph::sched
