#pragma once
// Batched work-stealing balancing, the scale step beyond the paper's
// per-job dynamic protocol: the master hands out *batches* of paths whose
// size shrinks guided-style as the pool drains, slaves report a whole
// exhausted batch in one message, and an idle slave refills by *stealing*
// half of a busy slave's remaining batch -- the bulk jobs travel
// slave-to-slave through the mp mailbox layer, so only a small brokerage
// message ever round-trips to the master.  Per-message cost is paid per
// batch instead of per path, which is what survives high latency
// (DESIGN.md section 2, "Batched work stealing"; measured against the
// per-job protocol in bench_sched_ablation).
//
// LEGACY ENTRY POINT: run_batch is a thin wrapper over the unified session
// API (sched/session.hpp, DESIGN.md section 7) -- equivalent to a Session
// over a VectorJobSource with Policy::kBatchSteal and an
// InMemoryReportSink.  Kept for source compatibility; new code should
// compose a Session (or call sched::run_paths) directly.

#include <optional>

#include "sched/session.hpp"

namespace pph::sched {

struct BatchOptions {
  /// Guided shrink rate: a refill takes remaining/(factor*slaves) jobs.
  double factor = 2.0;
  /// Batch size floor (the tail degenerates to per-job dispatch).
  std::size_t min_batch = 1;
  /// Simulated per-message latency in seconds (0 for none), as in
  /// DynamicOptions: surfaces the communication overhead in-process.
  double injected_latency = 0.0;
  /// Fail-injection hook for tests: the slave at kill_slave_rank "dies"
  /// after completing this many paths; the master re-queues everything the
  /// dead slave still owned (including completed-but-unreported results).
  std::optional<std::size_t> kill_slave_after_jobs;
  int kill_slave_rank = -1;
};

/// Track all workload paths with `ranks` ranks (rank 0 = master, so at
/// least 2 are required).  Path results are identical to run_static /
/// run_dynamic: scheduling policy never changes the numerics.
[[deprecated("compose a sched::Session (or call sched::run_paths with Policy::kBatchSteal)")]]
ParallelRunReport run_batch(const PathWorkload& workload, int ranks,
                            const BatchOptions& opts = {});

}  // namespace pph::sched
