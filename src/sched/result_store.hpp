#pragma once
// Streaming on-disk result store for scheduler sessions (DESIGN.md
// section 7): a JSONL file with one TrackedPath record per line, flushed
// per record so a killed run loses at most the line being written, plus an
// index/offset footer appended on clean shutdown.  Doubles are framed as
// their IEEE-754 bits in hex (mp::append_double_bits), because resumed
// sessions must reproduce results bit for bit and diverged paths
// legitimately carry NaN endpoints.
//
// File layout (the line formats live in store/record_codec.hpp, the ONE
// codec shared with the read side):
//   {"pph_result_store":{"version":3,...}}                  header
//   {"i":...,"w":...,"sec":"<hex>", ... ,"x":"<hex...>"}    one per record
//   ...
//   {"footer":{"records":N,...,"offsets":[[id,byte],...]}}  clean close only
//
// Resume protocol: load_result_store parses records up to the footer (clean
// close) or up to the first truncated/corrupt line (killed run; the partial
// tail is dropped and its jobs simply re-track -- tracking is deterministic,
// so the resumed store is identical).  A resuming JsonlStoreSink cuts the
// footer/tail and appends; the session skips the restored indices and only
// tracks the remainder.  Resuming keeps the on-disk format version (v2
// stores stay v2 -- mixing record schemas in one file would corrupt it);
// a v1 store restarts fresh, as it always has.
//
// This header is the WRITE side plus the legacy whole-store loader.  For
// queries, prefer store/store_reader.hpp: mmapped, footer-indexed O(1)
// random access, lazy per-record decode.

#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>

#include "sched/session.hpp"
#include "store/record_codec.hpp"

namespace pph::sched {

/// One parsed store file.
struct StoreLoad {
  std::vector<TrackedPath> records;  // file order; first occurrence of an id wins
  std::vector<std::pair<JobId, std::uint64_t>> offsets;  // byte offset per record
  std::uint64_t append_offset = 0;  // where a resuming writer continues
  int version = 0;                  // header format version (0: none readable)
  store::StoreMeta meta;            // writer metadata (v3 headers only)
  bool had_footer = false;          // clean close
  bool truncated = false;           // partial/corrupt tail dropped
};

/// Render / parse one record line (no trailing newline) in the current
/// format version.  Thin wrappers over store/record_codec.hpp, kept for the
/// round-trip tests; throw std::invalid_argument on malformed input.
std::string store_record_line(const TrackedPath& tp);
TrackedPath parse_store_record(const std::string& line);

/// Parse a store file into memory.  A missing file loads as empty and
/// clean; a file whose header is unreadable loads as empty with truncated
/// set (the resuming writer starts over).  Thin wrapper over
/// store::StoreReader -- there is exactly one parser.
StoreLoad load_result_store(const std::string& path);

/// ResultSink streaming every accepted record to a JSONL store.
class JsonlStoreSink final : public ResultSink {
 public:
  /// Open `path`.  resume=true loads whatever the store already holds
  /// (restored()/restored_ids()), cuts any footer or corrupt tail, and
  /// appends in the store's own format version; resume=false starts a
  /// fresh store in the current version.  `meta` is the writer provenance
  /// stamped into a fresh header (ignored when resuming -- the on-disk
  /// header stays).
  explicit JsonlStoreSink(std::string path, bool resume = false,
                          store::StoreMeta meta = {});
  ~JsonlStoreSink() override;
  JsonlStoreSink(const JsonlStoreSink&) = delete;
  JsonlStoreSink& operator=(const JsonlStoreSink&) = delete;

  void accept(const TrackedPath& tp) override;  // append + flush (checkpoint)
  void finish() override;                       // footer + close

  /// Format version of the records this sink writes (the on-disk version
  /// when resuming, store::kFormatVersion for a fresh store).
  int version() const { return version_; }

  const std::vector<TrackedPath>& restored() const { return restored_; }
  std::unordered_set<JobId> restored_ids() const;
  /// Records on disk: restored plus appended this session.
  std::size_t stored_count() const { return restored_.size() + appended_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int version_ = store::kFormatVersion;
  std::vector<TrackedPath> restored_;
  std::vector<std::pair<JobId, std::uint64_t>> offsets_;
  std::uint64_t offset_ = 0;
  std::size_t appended_ = 0;
  bool finished_ = false;
};

/// Facade: track `workload` through a session streaming to the store at
/// `store_path`, resuming from whatever the store already holds -- a
/// restarted session loads the completed indices and only tracks the
/// remainder.  The report contains restored and new paths alike, so a
/// killed-then-resumed run reports identically to an uninterrupted one.
struct StoreRunResult {
  ParallelRunReport report;
  SessionStats stats;
  std::size_t restored = 0;  // records loaded from a previous session
  bool completed = false;    // the store now holds every workload path
};
StoreRunResult run_with_store(const PathWorkload& workload, int ranks,
                              const std::string& store_path,
                              const SessionOptions& opts = {});

}  // namespace pph::sched
