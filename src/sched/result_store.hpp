#pragma once
// Streaming on-disk result store for scheduler sessions (DESIGN.md
// section 7): a JSONL file with one TrackedPath record per line, flushed
// per record so a killed run loses at most the line being written, plus an
// index/offset footer appended on clean shutdown.  Doubles are framed as
// their IEEE-754 bits in hex (mp::append_double_bits), because resumed
// sessions must reproduce results bit for bit and diverged paths
// legitimately carry NaN endpoints.
//
// File layout:
//   {"pph_result_store":{"version":1}}                      header
//   {"i":...,"w":...,"sec":"<hex>", ... ,"x":"<hex...>"}    one per record
//   ...
//   {"footer":{"records":N,"offsets":[[id,byte],...]}}      clean close only
//
// Resume protocol: load_result_store parses records up to the footer (clean
// close) or up to the first truncated/corrupt line (killed run; the partial
// tail is dropped and its jobs simply re-track -- tracking is deterministic,
// so the resumed store is identical).  A resuming JsonlStoreSink cuts the
// footer/tail and appends; the session skips the restored indices and only
// tracks the remainder.

#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>

#include "sched/session.hpp"

namespace pph::sched {

/// One parsed store file.
struct StoreLoad {
  std::vector<TrackedPath> records;  // file order; first occurrence of an id wins
  std::vector<std::pair<JobId, std::uint64_t>> offsets;  // byte offset per record
  std::uint64_t append_offset = 0;  // where a resuming writer continues
  bool had_footer = false;          // clean close
  bool truncated = false;           // partial/corrupt tail dropped
};

/// Render / parse one record line (no trailing newline).  Exposed for the
/// round-trip tests; throws std::invalid_argument on malformed input.
std::string store_record_line(const TrackedPath& tp);
TrackedPath parse_store_record(const std::string& line);

/// Parse a store file.  A missing file loads as empty and clean; a file
/// whose header is unreadable loads as empty with truncated set (the
/// resuming writer starts over).
StoreLoad load_result_store(const std::string& path);

/// ResultSink streaming every accepted record to a JSONL store.
class JsonlStoreSink final : public ResultSink {
 public:
  /// Open `path`.  resume=true loads whatever the store already holds
  /// (restored()/restored_ids()), cuts any footer or corrupt tail, and
  /// appends; resume=false starts a fresh store.
  explicit JsonlStoreSink(std::string path, bool resume = false);
  ~JsonlStoreSink() override;
  JsonlStoreSink(const JsonlStoreSink&) = delete;
  JsonlStoreSink& operator=(const JsonlStoreSink&) = delete;

  void accept(const TrackedPath& tp) override;  // append + flush (checkpoint)
  void finish() override;                       // footer + close

  const std::vector<TrackedPath>& restored() const { return restored_; }
  std::unordered_set<JobId> restored_ids() const;
  /// Records on disk: restored plus appended this session.
  std::size_t stored_count() const { return restored_.size() + appended_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<TrackedPath> restored_;
  std::vector<std::pair<JobId, std::uint64_t>> offsets_;
  std::uint64_t offset_ = 0;
  std::size_t appended_ = 0;
  bool finished_ = false;
};

/// Facade: track `workload` through a session streaming to the store at
/// `store_path`, resuming from whatever the store already holds -- a
/// restarted session loads the completed indices and only tracks the
/// remainder.  The report contains restored and new paths alike, so a
/// killed-then-resumed run reports identically to an uninterrupted one.
struct StoreRunResult {
  ParallelRunReport report;
  SessionStats stats;
  std::size_t restored = 0;  // records loaded from a previous session
  bool completed = false;    // the store now holds every workload path
};
StoreRunResult run_with_store(const PathWorkload& workload, int ranks,
                              const std::string& store_path,
                              const SessionOptions& opts = {});

}  // namespace pph::sched
